"""Generic AST traversal and transformation helpers.

:func:`transform` rebuilds an AST bottom-up, calling a function on every
expression node and replacing it with the function's result.  It is the
workhorse of the measure expansion rewrites in :mod:`repro.core.expansion`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, TypeVar

from repro.sql import ast

__all__ = ["transform", "find_all", "contains"]

NodeT = TypeVar("NodeT", bound=ast.Node)


def transform(
    node: NodeT,
    fn: Callable[[ast.Expression], ast.Expression],
    *,
    into_queries: bool = True,
) -> NodeT:
    """Return a copy of ``node`` with ``fn`` applied to every expression.

    Children are transformed first (bottom-up), then ``fn`` is applied to the
    rebuilt expression itself.  When ``into_queries`` is false, nested
    :class:`~repro.sql.ast.Query` nodes are left untouched, which lets callers
    rewrite one query level at a time.
    """

    def rebuild(value):
        if isinstance(value, ast.Query) and not into_queries:
            return value
        if isinstance(value, ast.Node):
            changes = {}
            for f in dataclasses.fields(value):
                old = getattr(value, f.name)
                new = rebuild_value(old)
                if new is not old:
                    changes[f.name] = new
            result = dataclasses.replace(value, **changes) if changes else value
            if isinstance(result, ast.Expression):
                result = fn(result)
            return result
        return value

    def rebuild_value(value):
        if isinstance(value, ast.Node):
            return rebuild(value)
        if isinstance(value, list):
            new_items = [rebuild_value(item) for item in value]
            if all(a is b for a, b in zip(new_items, value)):
                return value
            return new_items
        if isinstance(value, tuple) and any(
            isinstance(item, ast.Node) for item in value
        ):
            return tuple(rebuild_value(item) for item in value)
        return value

    return rebuild(node)


def transform_topdown(
    node: ast.Node,
    fn: Callable[[ast.Node], "ast.Node | None"],
    *,
    into_queries: bool = False,
) -> ast.Node:
    """Rebuild an AST top-down: ``fn`` sees each node before its children and
    may return a replacement, which is NOT descended into.  Returning None
    recurses into the (rebuilt) children."""

    def rebuild(value):
        if isinstance(value, ast.Query) and not into_queries:
            return value
        if isinstance(value, ast.Node):
            replacement = fn(value)
            if replacement is not None:
                return replacement
            changes = {}
            for f in dataclasses.fields(value):
                old = getattr(value, f.name)
                new = rebuild_value(old)
                if new is not old:
                    changes[f.name] = new
            return dataclasses.replace(value, **changes) if changes else value
        return value

    def rebuild_value(value):
        if isinstance(value, ast.Node):
            return rebuild(value)
        if isinstance(value, list):
            new_items = [rebuild_value(item) for item in value]
            if all(a is b for a, b in zip(new_items, value)):
                return value
            return new_items
        if isinstance(value, tuple) and any(
            isinstance(item, ast.Node) for item in value
        ):
            return tuple(rebuild_value(item) for item in value)
        return value

    return rebuild(node)


def find_all(node: ast.Node, node_type: type[NodeT]) -> Iterator[NodeT]:
    """Yield every descendant (including ``node`` itself) of ``node_type``."""
    for descendant in node.walk():
        if isinstance(descendant, node_type):
            yield descendant


def contains(node: ast.Node, node_type: type[ast.Node]) -> bool:
    """True if any descendant of ``node`` has type ``node_type``."""
    return next(find_all(node, node_type), None) is not None
