"""Recursive-descent parser for the supported SQL dialect.

The grammar covers the subset in DESIGN.md plus the paper's measure
extensions.  Expression parsing is precedence-climbing with these levels,
loosest first::

    OR  <  AND  <  NOT  <  comparison/IS/IN/BETWEEN/LIKE  <  + - ||  <  * / %
       <  unary +/-  <  postfix AT  <  primary

``AT`` binds tighter than arithmetic so that, as in the paper's Listing 6,
``sumRevenue / sumRevenue AT (ALL prodName)`` divides by the modified measure.
"""

from __future__ import annotations

import datetime
from typing import Optional

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

__all__ = ["parse_statement", "parse_statements", "parse_query", "parse_expression"]

#: Keywords that may also appear as function names (``AGGREGATE(m)`` etc.).
_KEYWORD_FUNCTIONS = frozenset({"AGGREGATE", "EVAL", "GROUPING", "IF", "LEFT", "RIGHT", "REPLACE"})

_COMPARISON_OPS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})

_JOIN_KEYWORDS = frozenset({"JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS", "NATURAL"})


class _Parser:
    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0
        self.parameter_count = 0

    # -- token utilities ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def error(self, message: str) -> ParseError:
        token = self.current
        found = token.text or "end of input"
        return ParseError(f"{message} (found {found!r})", token.line, token.column)

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _mark(self, node: ast.Node, token: Token) -> ast.Node:
        """Attach ``token``'s source position to ``node`` (first mark wins)."""
        if node.span is None:
            node.span = ast.Span(
                token.line,
                token.column,
                token.line,
                token.column + max(len(token.text), 1),
            )
        return node

    def at_keyword(self, *words: str) -> bool:
        return self.current.is_keyword(*words)

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            raise self.error(f"expected {word}")
        return self.advance()

    def at_operator(self, *ops: str) -> bool:
        return self.current.type is TokenType.OPERATOR and self.current.text in ops

    def accept_operator(self, *ops: str) -> bool:
        if self.at_operator(*ops):
            self.advance()
            return True
        return False

    def expect_operator(self, op: str) -> Token:
        if not self.at_operator(op):
            raise self.error(f"expected {op!r}")
        return self.advance()

    def expect_ident(self, what: str = "identifier") -> str:
        if self.current.type is TokenType.IDENT:
            return str(self.advance().value)
        # Allow a few non-reserved keywords in identifier position.
        if self.current.type is TokenType.KEYWORD and self.current.text in (
            "AGGREGATE",
            "DATE",
            "EVAL",
            "FIRST",
            "LAST",
            "ROW",
            "SETS",
            "VALUES",
            "VISIBLE",
        ):
            return str(self.advance().value)
        raise self.error(f"expected {what}")

    # -- entry points --------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        stmt = self._statement()
        self.accept_operator(";")
        if self.current.type is not TokenType.EOF:
            raise self.error("unexpected input after statement")
        return stmt

    def parse_statements(self) -> list[ast.Statement]:
        statements = []
        while self.current.type is not TokenType.EOF:
            statements.append(self._statement())
            while self.accept_operator(";"):
                pass
        return statements

    def parse_query_only(self) -> ast.Query:
        query = self._query()
        self.accept_operator(";")
        if self.current.type is not TokenType.EOF:
            raise self.error("unexpected input after query")
        return query

    def parse_expression_only(self) -> ast.Expression:
        expr = self._expr()
        if self.current.type is not TokenType.EOF:
            raise self.error("unexpected input after expression")
        return expr

    # -- statements ---------------------------------------------------

    def _statement(self) -> ast.Statement:
        start = self.current
        return self._mark(self._statement_inner(), start)

    def _statement_inner(self) -> ast.Statement:
        if self.at_keyword("CREATE"):
            return self._create()
        if self.at_keyword("DROP"):
            return self._drop()
        if self.at_keyword("INSERT"):
            return self._insert()
        if self.at_keyword("UPDATE"):
            return self._update()
        if (
            self.current.type is TokenType.IDENT
            and str(self.current.value).upper() == "TRUNCATE"
        ):
            self.advance()
            self.accept_keyword("TABLE")
            return ast.Truncate(self.expect_ident("table name"))
        if (
            self.current.type is TokenType.IDENT
            and str(self.current.value).upper() == "ANALYZE"
        ):
            self.advance()
            table = None
            if self.current.type is TokenType.IDENT:
                table = self.expect_ident("table name")
            return ast.Analyze(table)
        if self.at_keyword("DELETE"):
            return self._delete()
        if self.at_keyword("REFRESH"):
            self.advance()
            self.expect_keyword("MATERIALIZED")
            self.expect_keyword("VIEW")
            return ast.RefreshMaterializedView(self.expect_ident("view name"))
        if (
            self.current.type is TokenType.IDENT
            and str(self.current.value).upper() == "EXPLAIN"
        ):
            self.advance()
            if (
                self.current.type is TokenType.IDENT
                and str(self.current.value).upper() == "EXPAND"
            ):
                self.advance()
                return ast.ExplainExpand(self._query())
            lint = False
            analyze = False
            types = False
            # Bare ANALYZE keyword: EXPLAIN ANALYZE <query>.
            if (
                self.current.type is TokenType.IDENT
                and str(self.current.value).upper() == "ANALYZE"
            ):
                self.advance()
                analyze = True
            # EXPLAIN (LINT[, ANALYZE][, TYPES]) query — the lookahead
            # distinguishes the option list from a parenthesized query:
            # EXPLAIN (SELECT ...) stays a plain EXPLAIN.
            elif (
                self.at_operator("(")
                and self.peek(1).type is TokenType.IDENT
                and str(self.peek(1).value).upper() in ("LINT", "ANALYZE", "TYPES")
            ):
                self.advance()  # '('
                while True:
                    option = self.expect_ident("EXPLAIN option").upper()
                    if option == "LINT":
                        lint = True
                    elif option == "ANALYZE":
                        analyze = True
                    elif option == "TYPES":
                        types = True
                    else:
                        raise self.error(
                            f"unknown EXPLAIN option {option}; "
                            "expected LINT, ANALYZE or TYPES"
                        )
                    if not self.accept_operator(","):
                        break
                self.expect_operator(")")
            if not (
                self.at_keyword("SELECT", "WITH", "VALUES")
                or self.at_operator("(")
                or self._at_show_stats()
            ):
                # EXPLAIN over DDL/DML: parses (so the linter can flag it,
                # rule RP111) but refuses to execute.
                target = self._statement()
                return ast.ExplainPlan(
                    None, lint=lint, analyze=analyze, types=types, target=target
                )
            return ast.ExplainPlan(
                self._query(), lint=lint, analyze=analyze, types=types
            )
        if self._at_show_stats():
            return ast.QueryStatement(self._show_stats())
        if self.at_keyword("SELECT", "WITH", "VALUES") or self.at_operator("("):
            return ast.QueryStatement(self._query())
        raise self.error("expected a statement")

    def _at_show_stats(self) -> bool:
        """True at ``SHOW STATS`` (two soft keywords, like EXPLAIN: plain
        identifiers named show/stats stay usable everywhere else)."""
        return (
            self.current.type is TokenType.IDENT
            and str(self.current.value).upper() == "SHOW"
            and self.peek(1).type is TokenType.IDENT
            and str(self.peek(1).value).upper() == "STATS"
        )

    def _show_stats(self) -> ast.ShowStats:
        token = self.advance()  # SHOW
        self.advance()  # STATS
        node = ast.ShowStats()
        self._mark(node, token)
        return node

    def _create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        or_replace = False
        if self.accept_keyword("OR"):
            self.expect_keyword("REPLACE")
            or_replace = True
        if self.accept_keyword("TABLE"):
            if_not_exists = False
            if self.accept_keyword("IF"):
                self.expect_keyword("NOT")
                self.expect_keyword("EXISTS")
                if_not_exists = True
            name = self.expect_ident("table name")
            if self.accept_keyword("AS"):
                return ast.CreateTableAs(name, self._query(), or_replace)
            self.expect_operator("(")
            columns = []
            while True:
                col_name = self.expect_ident("column name")
                type_name = self._type_name()
                columns.append(ast.ColumnDef(col_name, type_name))
                if not self.accept_operator(","):
                    break
            self.expect_operator(")")
            return ast.CreateTable(name, columns, or_replace, if_not_exists)
        if self.accept_keyword("MATERIALIZED"):
            self.expect_keyword("VIEW")
            name = self.expect_ident("view name")
            self.expect_keyword("AS")
            return ast.CreateMaterializedView(name, self._query(), or_replace)
        if self.accept_keyword("VIEW"):
            name = self.expect_ident("view name")
            column_names: list[str] = []
            if self.accept_operator("("):
                while True:
                    column_names.append(self.expect_ident("column name"))
                    if not self.accept_operator(","):
                        break
                self.expect_operator(")")
            self.expect_keyword("AS")
            query = self._query()
            return ast.CreateView(name, query, or_replace, column_names)
        raise self.error("expected TABLE, VIEW or MATERIALIZED VIEW after CREATE")

    def _type_name(self) -> str:
        if self.current.type is TokenType.KEYWORD and self.current.text in (
            "DATE",
            "BOOLEAN",
        ):
            return self.advance().text
        name = self.expect_ident("type name")
        # Consume optional precision/scale, e.g. VARCHAR(30), DECIMAL(10, 2).
        if self.accept_operator("("):
            while not self.at_operator(")"):
                self.advance()
            self.expect_operator(")")
        return name

    def _drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            kind = "TABLE"
        elif self.accept_keyword("MATERIALIZED"):
            self.expect_keyword("VIEW")
            kind = "MATERIALIZED VIEW"
        elif self.accept_keyword("VIEW"):
            kind = "VIEW"
        else:
            raise self.error("expected TABLE, VIEW or MATERIALIZED VIEW after DROP")
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        name = self.expect_ident("object name")
        return ast.DropObject(kind, name, if_exists)

    def _update(self) -> ast.Statement:
        self.expect_keyword("UPDATE")
        table = self.expect_ident("table name")
        self.expect_keyword("SET")
        assignments = []
        while True:
            column = self.expect_ident("column name")
            self.expect_operator("=")
            assignments.append(ast.Assignment(column, self._expr()))
            if not self.accept_operator(","):
                break
        where = self._expr() if self.accept_keyword("WHERE") else None
        return ast.Update(table, assignments, where)

    def _delete(self) -> ast.Statement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident("table name")
        where = self._expr() if self.accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    def _insert(self) -> ast.Statement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident("table name")
        columns: list[str] = []
        if self.at_operator("(") and not self._paren_starts_query():
            self.expect_operator("(")
            while True:
                columns.append(self.expect_ident("column name"))
                if not self.accept_operator(","):
                    break
            self.expect_operator(")")
        source = self._query()
        return ast.Insert(table, columns, source)

    # -- queries --------------------------------------------------------

    def _paren_starts_query(self) -> bool:
        """Does the current '(' open a query (vs a parenthesized expression)?

        Only one level is inspected: ``((SELECT ...`` is treated as an
        expression paren whose contents re-enter the expression parser, where
        the inner ``(SELECT`` becomes a scalar subquery.  This makes shapes
        like ``((SELECT a) / (SELECT b))`` parse correctly.
        """
        if not self.at_operator("("):
            return False
        return self.peek(1).is_keyword("SELECT", "WITH", "VALUES")

    def _query(self) -> ast.Query:
        if self.at_keyword("WITH"):
            return self._with_query()
        return self._set_op_query()

    def _with_query(self) -> ast.Query:
        self.expect_keyword("WITH")
        ctes = []
        while True:
            name = self.expect_ident("CTE name")
            columns: list[str] = []
            if self.accept_operator("("):
                while True:
                    columns.append(self.expect_ident("column name"))
                    if not self.accept_operator(","):
                        break
                self.expect_operator(")")
            self.expect_keyword("AS")
            self.expect_operator("(")
            query = self._query()
            self.expect_operator(")")
            ctes.append(ast.Cte(name, columns, query))
            if not self.accept_operator(","):
                break
        body = self._set_op_query()
        return ast.WithQuery(ctes, body)

    def _set_op_query(self) -> ast.Query:
        left = self._intersect_query()
        while self.at_keyword("UNION", "EXCEPT"):
            op = self.advance().text
            all_flag = self.accept_keyword("ALL")
            if not all_flag:
                self.accept_keyword("DISTINCT")
            right = self._intersect_query()
            left = ast.SetOp(op, all_flag, left, right)
        self._attach_trailing_clauses(left)
        return left

    def _trailing_clauses(self) -> tuple:
        order_by: list[ast.OrderItem] = []
        limit = offset = None
        if self.at_keyword("ORDER"):
            order_by = self._order_by()
        if self.accept_keyword("LIMIT"):
            limit = self._expr()
        if self.accept_keyword("OFFSET"):
            offset = self._expr()
        return order_by, limit, offset

    def _intersect_query(self) -> ast.Query:
        left = self._query_primary()
        while self.at_keyword("INTERSECT"):
            self.advance()
            all_flag = self.accept_keyword("ALL")
            if not all_flag:
                self.accept_keyword("DISTINCT")
            right = self._query_primary()
            left = ast.SetOp("INTERSECT", all_flag, left, right)
        return left

    def _attach_trailing_clauses(self, query: ast.Query) -> None:
        """Attach ORDER BY / LIMIT / OFFSET to the whole query expression
        (they belong to the set operation, not its last operand)."""
        order_by, limit, offset = self._trailing_clauses()
        if isinstance(query, (ast.SetOp, ast.Select)):
            if order_by:
                query.order_by = order_by
            if limit is not None:
                query.limit = limit
            if offset is not None:
                query.offset = offset
        elif order_by or limit is not None or offset is not None:
            raise self.error("ORDER BY/LIMIT is not supported on VALUES")

    def _query_primary(self) -> ast.Query:
        if self.at_keyword("SELECT"):
            return self._select()
        if self.at_keyword("VALUES"):
            return self._values()
        if self._at_show_stats():
            # Parses anywhere a query can appear so lint rule RP112 can
            # point at nested uses; the binder rejects them.
            return self._show_stats()
        if self.at_operator("("):
            self.expect_operator("(")
            query = self._query()
            self.expect_operator(")")
            return query
        raise self.error("expected SELECT, VALUES, or a parenthesized query")

    def _values(self) -> ast.Values:
        self.expect_keyword("VALUES")
        rows = []
        while True:
            self.expect_operator("(")
            row = [self._expr()]
            while self.accept_operator(","):
                row.append(self._expr())
            self.expect_operator(")")
            rows.append(row)
            if not self.accept_operator(","):
                break
        return ast.Values(rows)

    def _select(self) -> ast.Select:
        start = self.expect_keyword("SELECT")
        distinct = False
        if self.accept_keyword("DISTINCT"):
            distinct = True
        else:
            self.accept_keyword("ALL")
        items = [self._select_item()]
        while self.accept_operator(","):
            items.append(self._select_item())
        select = ast.Select(items=items, distinct=distinct)
        self._mark(select, start)
        if self.accept_keyword("FROM"):
            select.from_clause = self._from_clause()
        if self.accept_keyword("WHERE"):
            select.where = self._expr()
        if self.at_keyword("GROUP"):
            self.advance()
            self.expect_keyword("BY")
            select.group_by = self._grouping_elements()
        if self.accept_keyword("HAVING"):
            select.having = self._expr()
        if self.accept_keyword("QUALIFY"):
            select.qualify = self._expr()
        if self.accept_keyword("WINDOW"):
            while True:
                window_name = self.expect_ident("window name")
                self.expect_keyword("AS")
                select.windows.append(
                    ast.NamedWindow(window_name, self._window_spec())
                )
                if not self.accept_operator(","):
                    break
        return select

    def _select_item(self) -> ast.SelectItem:
        start = self.current
        if self.at_operator("*"):
            self.advance()
            item = ast.SelectItem(self._mark(ast.Star(), start))
            return self._mark(item, start)
        if (
            self.current.type is TokenType.IDENT
            and self.peek(1).type is TokenType.OPERATOR
            and self.peek(1).text == "."
            and self.peek(2).type is TokenType.OPERATOR
            and self.peek(2).text == "*"
        ):
            qualifier = str(self.advance().value)
            self.advance()  # '.'
            self.advance()  # '*'
            item = ast.SelectItem(self._mark(ast.Star(qualifier), start))
            return self._mark(item, start)
        expr = self._expr()
        alias: Optional[str] = None
        is_measure = False
        if self.accept_keyword("AS"):
            if self.accept_keyword("MEASURE"):
                is_measure = True
            alias = self.expect_ident("alias")
        elif self.current.type is TokenType.IDENT:
            alias = str(self.advance().value)
        return self._mark(ast.SelectItem(expr, alias, is_measure), start)

    def _from_clause(self) -> ast.TableRef:
        left = self._join_chain()
        while self.accept_operator(","):
            right = self._join_chain()
            left = ast.Join("CROSS", left, right)
        return left

    def _join_chain(self) -> ast.TableRef:
        left = self._table_primary()
        while True:
            natural = False
            if self.at_keyword("NATURAL"):
                natural = True
                self.advance()
            if self.at_keyword("JOIN"):
                kind = "INNER"
                self.advance()
            elif self.at_keyword("INNER"):
                self.advance()
                self.expect_keyword("JOIN")
                kind = "INNER"
            elif self.at_keyword("LEFT", "RIGHT", "FULL"):
                kind = self.advance().text
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
            elif self.at_keyword("CROSS"):
                self.advance()
                self.expect_keyword("JOIN")
                kind = "CROSS"
            else:
                if natural:
                    raise self.error("expected JOIN after NATURAL")
                return left
            right = self._table_primary()
            join = ast.Join(kind, left, right, natural=natural)
            if kind != "CROSS" and not natural:
                if self.accept_keyword("ON"):
                    join.condition = self._expr()
                elif self.accept_keyword("USING"):
                    self.expect_operator("(")
                    names = [self.expect_ident("column name")]
                    while self.accept_operator(","):
                        names.append(self.expect_ident("column name"))
                    self.expect_operator(")")
                    join.using = names
                else:
                    raise self.error("expected ON or USING for join")
            left = join

    def _table_primary(self) -> ast.TableRef:
        table = self._table_primary_base()
        while self.at_keyword("PIVOT", "UNPIVOT"):
            if self.at_keyword("PIVOT"):
                table = self._pivot(table)
            else:
                table = self._unpivot(table)
        return table

    def _pivot(self, table: ast.TableRef) -> ast.TableRef:
        self.expect_keyword("PIVOT")
        self.expect_operator("(")
        agg_name = self.expect_ident("aggregate function")
        agg = self._function_call(agg_name)
        if not isinstance(agg, ast.FunctionCall):
            raise self.error("PIVOT requires an aggregate function call")
        self.expect_keyword("FOR")
        key = self._column_ref()
        self.expect_keyword("IN")
        self.expect_operator("(")
        values: list[tuple[ast.Literal, Optional[str]]] = []
        while True:
            literal = self._primary()
            if not isinstance(literal, ast.Literal):
                raise self.error("PIVOT IN list requires literals")
            alias = None
            if self.accept_keyword("AS"):
                alias = self.expect_ident("pivot column name")
            values.append((literal, alias))
            if not self.accept_operator(","):
                break
        self.expect_operator(")")
        self.expect_operator(")")
        alias = self._table_alias()
        return ast.PivotRef(table, agg, key, values, alias)

    def _unpivot(self, table: ast.TableRef) -> ast.TableRef:
        self.expect_keyword("UNPIVOT")
        self.expect_operator("(")
        value_column = self.expect_ident("value column name")
        self.expect_keyword("FOR")
        name_column = self.expect_ident("name column name")
        self.expect_keyword("IN")
        self.expect_operator("(")
        columns: list[tuple[str, Optional[str]]] = []
        while True:
            column = self.expect_ident("column name")
            label = None
            if self.accept_keyword("AS"):
                if self.current.type is TokenType.STRING:
                    label = str(self.advance().value)
                else:
                    label = self.expect_ident("label")
            columns.append((column, label))
            if not self.accept_operator(","):
                break
        self.expect_operator(")")
        self.expect_operator(")")
        alias = self._table_alias()
        return ast.UnpivotRef(table, value_column, name_column, columns, alias)

    def _table_primary_base(self) -> ast.TableRef:
        start = self.current
        if self.at_operator("("):
            self.expect_operator("(")
            if self.at_keyword("SELECT", "WITH", "VALUES"):
                query = self._query()
                self.expect_operator(")")
                alias = self._table_alias()
                return self._mark(ast.SubqueryRef(query, alias), start)
            # Parenthesized table expression (join tree, PIVOT, nested query).
            table = self._from_clause()
            self.expect_operator(")")
            return table
        name = self.expect_ident("table name")
        alias = self._table_alias()
        return self._mark(ast.TableName(name, alias), start)

    def _table_alias(self) -> Optional[str]:
        if self.accept_keyword("AS"):
            return self.expect_ident("alias")
        if self.current.type is TokenType.IDENT:
            return str(self.advance().value)
        return None

    def _grouping_elements(self) -> list[ast.GroupingElement]:
        elements: list[ast.GroupingElement] = []
        while True:
            if self.accept_keyword("ROLLUP"):
                self.expect_operator("(")
                exprs = [self._expr()]
                while self.accept_operator(","):
                    exprs.append(self._expr())
                self.expect_operator(")")
                elements.append(ast.Rollup(exprs))
            elif self.accept_keyword("CUBE"):
                self.expect_operator("(")
                exprs = [self._expr()]
                while self.accept_operator(","):
                    exprs.append(self._expr())
                self.expect_operator(")")
                elements.append(ast.Cube(exprs))
            elif self.at_keyword("GROUPING") and self.peek(1).is_keyword("SETS"):
                self.advance()
                self.advance()
                self.expect_operator("(")
                sets: list[list[ast.Expression]] = []
                while True:
                    self.expect_operator("(")
                    group: list[ast.Expression] = []
                    if not self.at_operator(")"):
                        group.append(self._expr())
                        while self.accept_operator(","):
                            group.append(self._expr())
                    self.expect_operator(")")
                    sets.append(group)
                    if not self.accept_operator(","):
                        break
                self.expect_operator(")")
                elements.append(ast.GroupingSets(sets))
            else:
                start = self.current
                elements.append(
                    self._mark(ast.SimpleGrouping(self._expr()), start)
                )
            if not self.accept_operator(","):
                return elements

    def _order_by(self) -> list[ast.OrderItem]:
        self.expect_keyword("ORDER")
        self.expect_keyword("BY")
        items = [self._order_item()]
        while self.accept_operator(","):
            items.append(self._order_item())
        return items

    def _order_item(self) -> ast.OrderItem:
        start = self.current
        expr = self._expr()
        descending = False
        if self.accept_keyword("DESC"):
            descending = True
        else:
            self.accept_keyword("ASC")
        nulls_first: Optional[bool] = None
        if self.accept_keyword("NULLS"):
            if self.accept_keyword("FIRST"):
                nulls_first = True
            else:
                self.expect_keyword("LAST")
                nulls_first = False
        return self._mark(ast.OrderItem(expr, descending, nulls_first), start)

    # -- expressions ------------------------------------------------------

    def _expr(self) -> ast.Expression:
        start = self.current
        return self._mark(self._or_expr(), start)

    def _or_expr(self) -> ast.Expression:
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = ast.Binary("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expression:
        left = self._not_expr()
        while self.accept_keyword("AND"):
            left = ast.Binary("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expression:
        if self.accept_keyword("NOT"):
            return ast.Unary("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expression:
        left = self._additive()
        while True:
            if self.current.type is TokenType.OPERATOR and self.current.text in _COMPARISON_OPS:
                op = self.advance().text
                if op == "!=":
                    op = "<>"
                right = self._additive()
                left = ast.Binary(op, left, right)
                continue
            if self.at_keyword("IS"):
                self.advance()
                negated = bool(self.accept_keyword("NOT"))
                if self.accept_keyword("NULL"):
                    left = ast.IsNull(left, negated)
                elif self.accept_keyword("DISTINCT"):
                    self.expect_keyword("FROM")
                    right = self._additive()
                    left = ast.IsDistinctFrom(left, right, negated)
                elif self.accept_keyword("TRUE"):
                    result = ast.Binary("=", left, ast.Literal(True))
                    left = ast.Unary("NOT", result) if negated else result
                elif self.accept_keyword("FALSE"):
                    result = ast.Binary("=", left, ast.Literal(False))
                    left = ast.Unary("NOT", result) if negated else result
                else:
                    raise self.error("expected NULL, TRUE, FALSE or DISTINCT FROM after IS")
                continue
            negated = False
            if self.at_keyword("NOT") and self.peek(1).is_keyword("BETWEEN", "IN", "LIKE"):
                self.advance()
                negated = True
            if self.accept_keyword("BETWEEN"):
                low = self._additive()
                self.expect_keyword("AND")
                high = self._additive()
                left = ast.Between(left, low, high, negated)
                continue
            if self.accept_keyword("IN"):
                self.expect_operator("(")
                if self.at_keyword("SELECT", "WITH", "VALUES"):
                    query = self._query()
                    self.expect_operator(")")
                    left = ast.InSubquery(left, query, negated)
                else:
                    items = [self._expr()]
                    while self.accept_operator(","):
                        items.append(self._expr())
                    self.expect_operator(")")
                    left = ast.InList(left, items, negated)
                continue
            if self.accept_keyword("LIKE"):
                pattern = self._additive()
                escape = None
                if self.accept_keyword("ESCAPE"):
                    escape = self._additive()
                left = ast.Like(left, pattern, negated, escape)
                continue
            if negated:
                raise self.error("expected BETWEEN, IN or LIKE after NOT")
            return left

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while True:
            if self.at_operator("+", "-"):
                op = self.advance().text
                left = ast.Binary(op, left, self._multiplicative())
            elif self.at_operator("||"):
                self.advance()
                left = ast.Binary("||", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while self.at_operator("*", "/", "%"):
            op = self.advance().text
            left = ast.Binary(op, left, self._unary())
        return left

    def _unary(self) -> ast.Expression:
        if self.at_operator("-"):
            self.advance()
            return ast.Unary("-", self._unary())
        if self.at_operator("+"):
            self.advance()
            return self._unary()
        return self._postfix()

    def _postfix(self) -> ast.Expression:
        expr = self._primary()
        while self.at_keyword("AT") and self.peek(1).type is TokenType.OPERATOR and self.peek(1).text == "(":
            at_token = self.advance()
            self.expect_operator("(")
            modifiers = self._at_modifiers()
            self.expect_operator(")")
            expr = self._mark(ast.At(expr, modifiers), at_token)
        return expr

    def _at_modifiers(self) -> list[ast.AtModifier]:
        modifiers: list[ast.AtModifier] = []
        while True:
            start = self.current
            if self.at_keyword("ALL"):
                self.advance()
                dims: list[ast.Expression] = []
                while self._starts_dimension():
                    dim_start = self.current
                    dims.append(self._mark(self._additive(), dim_start))
                    if not (
                        self.at_operator(",")
                        and not self.peek(1).is_keyword("ALL", "SET", "VISIBLE", "WHERE")
                    ):
                        break
                    self.advance()
                modifiers.append(self._mark(ast.AllModifier(dims), start))
            elif self.at_keyword("SET"):
                self.advance()
                dim_start = self.current
                dim = self._mark(self._additive(), dim_start)
                self.expect_operator("=")
                value = self._additive()
                modifiers.append(self._mark(ast.SetModifier(dim, value), start))
            elif self.at_keyword("VISIBLE"):
                self.advance()
                modifiers.append(self._mark(ast.VisibleModifier(), start))
            elif self.at_keyword("WHERE"):
                self.advance()
                modifiers.append(self._mark(ast.WhereModifier(self._expr()), start))
            else:
                raise self.error("expected ALL, SET, VISIBLE or WHERE in AT")
            self.accept_operator(",")
            if self.at_operator(")"):
                return modifiers

    def _starts_dimension(self) -> bool:
        token = self.current
        if token.type is TokenType.IDENT:
            return True
        if token.type is TokenType.KEYWORD and token.text in _KEYWORD_FUNCTIONS:
            return True
        return False

    def _primary(self) -> ast.Expression:
        token = self.current
        return self._mark(self._primary_inner(), token)

    def _primary_inner(self) -> ast.Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return ast.Literal(token.value)
        if token.type is TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if token.is_keyword("TRUE"):
            self.advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self.advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self.advance()
            return ast.Literal(None)
        if token.is_keyword("DATE") and self.peek(1).type is TokenType.STRING:
            self.advance()
            text = str(self.advance().value)
            try:
                value = datetime.date.fromisoformat(text.replace("/", "-"))
            except ValueError:
                raise ParseError(
                    f"invalid DATE literal {text!r}", token.line, token.column
                ) from None
            return ast.Literal(value)
        if token.is_keyword("CASE"):
            return self._case()
        if token.is_keyword("CAST"):
            return self._cast()
        if token.is_keyword("EXTRACT"):
            return self._extract()
        if token.is_keyword("EXISTS"):
            self.advance()
            self.expect_operator("(")
            query = self._query()
            self.expect_operator(")")
            return ast.Exists(query)
        if token.is_keyword("CURRENT"):
            self.advance()
            name = self.expect_ident("dimension name")
            parts = [name]
            while self.at_operator(".") and self.peek(1).type is TokenType.IDENT:
                self.advance()
                parts.append(self.expect_ident("dimension name"))
            return ast.CurrentDim(ast.ColumnRef(tuple(parts)))
        if token.is_keyword(*_KEYWORD_FUNCTIONS) and self.peek(1).type is TokenType.OPERATOR and self.peek(1).text == "(":
            name = self.advance().text
            return self._function_call(name)
        if token.type is TokenType.IDENT:
            if (
                self.peek(1).type is TokenType.OPERATOR
                and self.peek(1).text == "("
            ):
                name = str(self.advance().value)
                return self._function_call(name)
            return self._column_ref()
        if self.at_operator("?"):
            self.advance()
            parameter = ast.Parameter(self.parameter_count)
            self.parameter_count += 1
            return parameter
        if self.at_operator("("):
            if self._paren_starts_query():
                self.expect_operator("(")
                query = self._query()
                self.expect_operator(")")
                return ast.ScalarSubquery(query)
            self.expect_operator("(")
            expr = self._expr()
            self.expect_operator(")")
            return expr
        raise self.error("expected an expression")

    def _column_ref(self) -> ast.ColumnRef:
        start = self.current
        parts = [self.expect_ident("column name")]
        while self.at_operator(".") and (
            self.peek(1).type is TokenType.IDENT
            or self.peek(1).is_keyword("DATE")
        ):
            self.advance()
            parts.append(self.expect_ident("column name"))
        ref = ast.ColumnRef(tuple(parts))
        self._mark(ref, start)
        return ref

    def _function_call(self, name: str) -> ast.Expression:
        self.expect_operator("(")
        distinct = False
        star_arg = False
        args: list[ast.Expression] = []
        if self.at_operator("*"):
            self.advance()
            star_arg = True
        elif not self.at_operator(")"):
            if self.accept_keyword("DISTINCT"):
                distinct = True
            elif self.at_keyword("ALL") and not self.peek(1).is_keyword("SET", "VISIBLE", "WHERE"):
                self.accept_keyword("ALL")
            args.append(self._expr())
            while self.accept_operator(","):
                args.append(self._expr())
        order_by: list[ast.OrderItem] = []
        if self.at_keyword("ORDER"):
            # Ordered-set aggregates: LAST_VALUE(x ORDER BY day), STRING_AGG...
            order_by = self._order_by()
        self.expect_operator(")")
        call = ast.FunctionCall(
            name.upper(), args, distinct=distinct, star_arg=star_arg,
            order_by=order_by,
        )
        if self.at_keyword("WITHIN"):
            self.advance()
            self.expect_keyword("DISTINCT")
            self.expect_operator("(")
            call.within_distinct.append(self._expr())
            while self.accept_operator(","):
                call.within_distinct.append(self._expr())
            self.expect_operator(")")
        if self.at_keyword("FILTER"):
            self.advance()
            self.expect_operator("(")
            self.expect_keyword("WHERE")
            call.filter_where = self._expr()
            self.expect_operator(")")
        if self.at_keyword("OVER"):
            self.advance()
            if self.current.type is TokenType.IDENT:
                call.over_name = self.expect_ident("window name")
            else:
                call.over = self._window_spec()
        return call

    def _window_spec(self) -> ast.WindowSpec:
        self.expect_operator("(")
        spec = ast.WindowSpec()
        if self.at_keyword("PARTITION"):
            self.advance()
            self.expect_keyword("BY")
            spec.partition_by.append(self._expr())
            while self.accept_operator(","):
                spec.partition_by.append(self._expr())
        if self.at_keyword("ORDER"):
            spec.order_by = self._order_by()
        if self.at_keyword("ROWS", "RANGE"):
            unit = self.advance().text
            if self.accept_keyword("BETWEEN"):
                start = self._frame_bound()
                self.expect_keyword("AND")
                end = self._frame_bound()
            else:
                start = self._frame_bound()
                end = ast.FrameBound("CURRENT_ROW")
            spec.frame = ast.WindowFrame(unit, start, end)
        self.expect_operator(")")
        return spec

    def _frame_bound(self) -> ast.FrameBound:
        if self.accept_keyword("UNBOUNDED"):
            if self.accept_keyword("PRECEDING"):
                return ast.FrameBound("UNBOUNDED_PRECEDING")
            self.expect_keyword("FOLLOWING")
            return ast.FrameBound("UNBOUNDED_FOLLOWING")
        if self.at_keyword("CURRENT"):
            self.advance()
            self.expect_keyword("ROW")
            return ast.FrameBound("CURRENT_ROW")
        offset = self._additive()
        if self.accept_keyword("PRECEDING"):
            return ast.FrameBound("PRECEDING", offset)
        self.expect_keyword("FOLLOWING")
        return ast.FrameBound("FOLLOWING", offset)

    def _case(self) -> ast.Case:
        self.expect_keyword("CASE")
        operand = None
        if not self.at_keyword("WHEN"):
            operand = self._expr()
        whens = []
        while self.accept_keyword("WHEN"):
            condition = self._expr()
            self.expect_keyword("THEN")
            result = self._expr()
            whens.append(ast.CaseWhen(condition, result))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        else_result = None
        if self.accept_keyword("ELSE"):
            else_result = self._expr()
        self.expect_keyword("END")
        return ast.Case(operand, whens, else_result)

    def _cast(self) -> ast.Cast:
        self.expect_keyword("CAST")
        self.expect_operator("(")
        operand = self._expr()
        self.expect_keyword("AS")
        type_name = self._type_name()
        is_measure = bool(self.accept_keyword("MEASURE"))
        self.expect_operator(")")
        return ast.Cast(operand, type_name, is_measure)

    def _extract(self) -> ast.FunctionCall:
        self.expect_keyword("EXTRACT")
        self.expect_operator("(")
        field_name = self.expect_ident("datetime field").upper()
        self.expect_keyword("FROM")
        operand = self._expr()
        self.expect_operator(")")
        return ast.FunctionCall(field_name, [operand])


def parse_statement(text: str) -> ast.Statement:
    """Parse a single SQL statement (a trailing semicolon is allowed)."""
    return _Parser(text).parse_statement()


def parse_statements(text: str) -> list[ast.Statement]:
    """Parse a semicolon-separated script into a list of statements."""
    return _Parser(text).parse_statements()


def parse_query(text: str) -> ast.Query:
    """Parse a query expression (SELECT / VALUES / WITH / set operation)."""
    return _Parser(text).parse_query_only()


def parse_expression(text: str) -> ast.Expression:
    """Parse a standalone scalar expression (used heavily in tests)."""
    return _Parser(text).parse_expression_only()
