"""``python -m repro``: the interactive SQL shell."""

import sys

from repro.cli import main

sys.exit(main())
