"""CI smoke test for the query server.

Starts a real TCP server on a background thread, connects four clients,
and replays every paper listing concurrently in each.  The run passes
only if:

1. every client's results are **byte-identical** (canonical JSON) to a
   single-caller ``Database.execute()`` baseline,
2. the shared plan cache reports hits (the listings were replayed from
   cache, not replanned per client),
3. zero plan flips were recorded (concurrent replays kept stable plans),
4. a cache-hit replay is faster than a cold plan,
5. the HTTP sidecar answers ``/healthz`` and a spec-shaped ``/metrics``
   scrape, and ``repro_running_queries`` shows a progress row for a
   query held in flight, and
6. the server shuts down cleanly with no sessions left open.

Run it as ``make server-smoke`` or ``python scripts/server_smoke.py``.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
import urllib.request

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, _ROOT)  # the benchmarks package
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.api import Database
from repro.server import ServerThread, connect
from repro.server.protocol import dumps_line, encode_result
from repro.workloads.listings import SETUP, all_listing_sql
from repro.workloads.paper_data import load_paper_tables

CLIENTS = 4


def build_database(telemetry: bool) -> Database:
    db = Database(telemetry=telemetry)
    load_paper_tables(db)
    for ddl in SETUP.values():
        db.execute(ddl)
    return db


def main() -> int:
    reference = build_database(telemetry=False)
    listings = all_listing_sql(reference)
    baseline = {
        name: dumps_line(encode_result(reference.execute(sql)))
        for name, sql in listings.items()
    }
    print(f"baseline: {len(baseline)} paper listings")

    db = build_database(telemetry=True)
    failures: list[str] = []
    with ServerThread(db, http_port=0) as server:
        host, port = server.server.host, server.server.port
        print(f"server listening on {host}:{port}")
        print(f"observability sidecar on http port {server.http_port}")
        results: list[dict] = [dict() for _ in range(CLIENTS)]
        errors: list = []

        def client(i: int) -> None:
            try:
                with connect(host, port) as conn:
                    for name, sql in listings.items():
                        payload = conn.query(sql).payload
                        results[i][name] = dumps_line(payload)
            except Exception as exc:
                errors.append(f"client {i}: {exc!r}")

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        failures.extend(errors)
        for i in range(CLIENTS):
            for name, blob in baseline.items():
                got = results[i].get(name)
                if got != blob:
                    failures.append(f"client {i}: {name} diverged from baseline")

        stats = server.manager.plan_cache.stats()
        print(f"plan cache: {stats}")
        if stats["hits"] <= 0:
            failures.append("expected plan-cache hits > 0")
        flips = db.plan_flips()
        if flips:
            failures.append(f"expected zero plan flips, got {len(flips)}")

        from benchmarks.bench_server import _latency_pair

        latency = _latency_pair(server.manager, repeats=5)
        print(f"latency: {latency}")
        if latency["cache_hit_ms"] >= latency["cold_plan_ms"]:
            failures.append(
                "cache-hit latency not below cold-plan latency: "
                f"{latency}"
            )

        failures.extend(check_observability(db, server, host, port))

        open_sessions = server.manager.sessions()
        if open_sessions:
            failures.append(
                f"sessions left open after clients closed: "
                f"{[s.id for s in open_sessions]}"
            )

    if failures:
        print(f"\nSMOKE FAILED ({len(failures)}):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"\nSMOKE OK: {CLIENTS} clients x {len(baseline)} listings "
        "byte-identical, cache hot, zero flips, sidecar scraped, "
        "clean shutdown."
    )
    return 0


def _http_get(host: str, port: int, path: str) -> str:
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=10
    ) as response:
        return response.read().decode("utf-8")


def check_observability(db, server, host: str, port: int) -> list[str]:
    """Scrape the HTTP sidecar and catch an in-flight query's progress."""
    failures: list[str] = []
    http_port = server.http_port

    health = json.loads(_http_get(host, http_port, "/healthz"))
    print(f"healthz: {health}")
    if health.get("status") != "ok":
        failures.append(f"/healthz not ok: {health}")
    if not isinstance(health.get("uptime_seconds"), (int, float)) or (
        health["uptime_seconds"] < 0
    ):
        failures.append(f"/healthz uptime_seconds bad: {health}")
    from repro import __version__

    if health.get("version") != __version__:
        failures.append(f"/healthz version != {__version__}: {health}")
    if not isinstance(health.get("sessions"), int):
        failures.append(f"/healthz sessions missing: {health}")
    # The four clients already replayed every listing through telemetry.
    if not health.get("queries_total", 0) > 0:
        failures.append(f"/healthz queries_total not positive: {health}")

    metrics = _http_get(host, http_port, "/metrics")
    if "# TYPE queries_total counter" not in metrics:
        failures.append("/metrics missing the queries_total counter")

    # Hold a deliberately slow cross join in flight and assert the
    # progress tables report it from a second session.
    with connect(host, port) as runner, connect(host, port) as watcher:
        runner.query("CREATE TABLE smoke_big (x INTEGER)")
        values = ", ".join(f"({i})" for i in range(500))
        runner.query(f"INSERT INTO smoke_big VALUES {values}")

        def doomed() -> None:
            try:
                runner.query(
                    "SELECT COUNT(*) FROM smoke_big AS a "
                    "JOIN smoke_big AS b ON a.x >= 0 "
                    "JOIN smoke_big AS c ON b.x >= 0"
                )
            except Exception:
                pass  # cancelled below, by design

        thread = threading.Thread(target=doomed)
        thread.start()
        progress_row = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and progress_row is None:
            rows = watcher.query(
                "SELECT query_id, rows_processed, current_operator "
                "FROM repro_running_queries"
            ).rows
            for row in rows:
                if row[1] and row[2]:
                    progress_row = row
            time.sleep(0.05)
        sidecar_queries = json.loads(
            _http_get(host, http_port, "/queries")
        )["queries"]
        runner.cancel()
        thread.join(timeout=30)
        if progress_row is None:
            failures.append(
                "repro_running_queries never showed the in-flight query"
            )
        else:
            print(f"progress row: {progress_row}")
        if not sidecar_queries:
            failures.append("/queries did not report the in-flight query")
        runner.query("DROP TABLE smoke_big")
    return failures


if __name__ == "__main__":
    sys.exit(main())
