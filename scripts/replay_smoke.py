"""CI smoke test for the workload flight recorder.

Records all fifteen paper listings through a real TCP server with the
journal attached, then proves the journal round-trips:

1. ``python -m repro.history replay --diff`` over the recorded journal
   must be **byte-identical** (exit 0, zero divergences),
2. a deliberately corrupted copy (one result digest flipped) must make
   the same command exit non-zero and name the diverging statement —
   the diff gate actually gates.

The journal is left on disk (default ``replay/journal.jsonl``; first
CLI argument overrides) so CI can upload it as an artifact next to the
run that produced it.

Run it as ``make replay-smoke`` or ``python scripts/replay_smoke.py``.
"""

from __future__ import annotations

import json
import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.api import Database
from repro.history import JournalWriter, read_journal
from repro.history.__main__ import main as history_main
from repro.server import ServerThread, connect
from repro.workloads.listings import SETUP, all_listing_sql
from repro.workloads.paper_data import load_paper_tables


def record_listings(journal_path: str) -> int:
    """Serve the paper database and record every listing; returns the
    number of statements journaled."""
    db = Database(telemetry=True)
    load_paper_tables(db)
    for ddl in SETUP.values():
        db.execute(ddl)
    listings = all_listing_sql(db)
    db.recorder = JournalWriter(journal_path, bootstrap="listings")
    try:
        with ServerThread(db) as server:
            host, port = server.server.host, server.server.port
            print(f"recording {len(listings)} listings via {host}:{port}")
            with connect(host, port) as conn:
                for sql in listings.values():
                    conn.query(sql)
    finally:
        db.recorder.close()
        db.recorder = None
    _, entries = read_journal(journal_path)
    return len(entries)


def corrupt_copy(journal_path: str) -> str:
    """Write a copy of the journal with the last entry's digest flipped."""
    with open(journal_path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    entry = json.loads(lines[-1])
    digest = entry.get("digest") or "0" * 64
    entry["digest"] = ("f" if digest[0] != "f" else "0") + digest[1:]
    lines[-1] = json.dumps(entry, sort_keys=True)
    corrupted = journal_path + ".corrupted"
    with open(corrupted, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    return corrupted


def main() -> int:
    journal_path = (
        sys.argv[1] if len(sys.argv) > 1 else os.path.join("replay", "journal.jsonl")
    )
    directory = os.path.dirname(journal_path)
    if directory:
        os.makedirs(directory, exist_ok=True)

    failures: list[str] = []
    recorded = record_listings(journal_path)
    print(f"journal: {journal_path} ({recorded} statements)")
    if recorded < 15:
        failures.append(f"expected >= 15 recorded statements, got {recorded}")

    code = history_main(["replay", journal_path, "--diff"])
    if code != 0:
        failures.append(f"replay --diff of the clean journal exited {code}")

    corrupted = corrupt_copy(journal_path)
    code = history_main(["replay", corrupted, "--diff"])
    if code == 0:
        failures.append("replay --diff accepted a corrupted journal")
    else:
        print(f"corrupted journal correctly rejected (exit {code})")
    os.unlink(corrupted)

    if failures:
        print(f"\nREPLAY SMOKE FAILED ({len(failures)}):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"\nREPLAY SMOKE OK: {recorded} statements recorded, replay "
        "byte-identical, injected mismatch rejected."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
