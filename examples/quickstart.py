"""Quickstart: measures in 60 lines.

Run with::

    python examples/quickstart.py
"""

from repro import Database

db = Database()

# 1. Plain SQL: create the paper's Orders table.
db.execute(
    """CREATE TABLE Orders (
         prodName VARCHAR, custName VARCHAR, orderDate DATE,
         revenue INTEGER, cost INTEGER)"""
)
db.execute(
    """INSERT INTO Orders VALUES
       ('Happy', 'Alice', DATE '2023-11-28', 6, 4),
       ('Acme',  'Bob',   DATE '2023-11-27', 5, 2),
       ('Happy', 'Alice', DATE '2024-11-28', 7, 4),
       ('Whizz', 'Celia', DATE '2023-11-25', 3, 1),
       ('Happy', 'Bob',   DATE '2022-11-27', 4, 1)"""
)

# 2. Attach a calculation to the table with AS MEASURE.  The view keeps the
#    table's grain — no GROUP BY — and the formula contains aggregates.
db.execute(
    """CREATE VIEW EnhancedOrders AS
       SELECT orderDate, prodName,
              (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
       FROM Orders"""
)

# 3. Use the measure at any grain.  AGGREGATE evaluates it in the context of
#    each group — here, per product.
print("Profit margin by product:")
print(
    db.execute(
        """SELECT prodName, AGGREGATE(profitMargin), COUNT(*)
           FROM EnhancedOrders GROUP BY prodName ORDER BY prodName"""
    ).pretty()
)

# 4. The same measure at a different grain: no formula repetition.
print("\nProfit margin overall:")
print(db.execute("SELECT AGGREGATE(profitMargin) FROM EnhancedOrders").pretty())

# 5. The AT operator changes the evaluation context: compare each year's
#    margin to the previous year's without a self-join.
print("\nMargin vs last year:")
print(
    db.execute(
        """SELECT prodName, orderYear, profitMargin,
                  profitMargin AT (SET orderYear = CURRENT orderYear - 1)
                    AS lastYear
           FROM (SELECT *,
                   (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
                   YEAR(orderDate) AS orderYear
                 FROM Orders)
           GROUP BY prodName, orderYear ORDER BY prodName, orderYear"""
    ).pretty()
)

# 6. Everything a measure does can be spelled as plain SQL: expand it.
print("\nWhat the engine actually runs (paper Listing 5):")
print(
    db.expand(
        "SELECT prodName, AGGREGATE(profitMargin) FROM EnhancedOrders GROUP BY prodName"
    )
)
