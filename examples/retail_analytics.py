"""Retail analytics dashboard: the workload the paper's introduction
motivates, on a synthetic star schema.

One set of measures is defined once, in one place; every dashboard panel
below is a small, self-contained query.  Changing the date range of a panel
changes one clause, not many — the problem statement of paper section 1.

Run with::

    python examples/retail_analytics.py
"""

from repro.workloads import WorkloadConfig, workload_database

db = workload_database(WorkloadConfig(orders=5000, products=20, customers=60))

# The semantic model: one wide view over the star schema (paper section 5.3),
# with the business calculations attached as measures.
db.execute(
    """CREATE VIEW Sales AS
       SELECT o.prodName, p.category, o.custName, c.region,
              YEAR(o.orderDate) AS orderYear,
              QUARTER(o.orderDate) AS orderQuarter,
              SUM(o.revenue) AS MEASURE revenue,
              SUM(o.cost) AS MEASURE cost,
              (SUM(o.revenue) - SUM(o.cost)) / SUM(o.revenue) AS MEASURE margin,
              COUNT(*) AS MEASURE orders
       FROM Orders AS o
       JOIN Products AS p ON o.prodName = p.prodName
       JOIN Customers AS c ON o.custName = c.custName"""
)

print("Panel 1: revenue and margin by category")
print(
    db.execute(
        """SELECT category, AGGREGATE(revenue) AS revenue,
                  AGGREGATE(margin) AS margin
           FROM Sales GROUP BY category ORDER BY revenue DESC"""
    ).pretty()
)

print("\nPanel 2: top products with share of total revenue")
print(
    db.execute(
        """SELECT prodName, AGGREGATE(revenue) AS revenue,
                  revenue / revenue AT (ALL prodName) AS share
           FROM Sales GROUP BY prodName ORDER BY revenue DESC LIMIT 5"""
    ).pretty()
)

print("\nPanel 3: year-over-year revenue growth by category")
print(
    db.execute(
        """SELECT category, orderYear,
                  AGGREGATE(revenue) AS revenue,
                  revenue / revenue AT (SET orderYear = CURRENT orderYear - 1) - 1
                    AS growth
           FROM Sales GROUP BY category, orderYear
           ORDER BY category, orderYear"""
    ).pretty(max_rows=12)
)

print("\nPanel 4: north region vs company-wide margin")
print(
    db.execute(
        """SELECT orderYear,
                  AGGREGATE(margin) AS northMargin,
                  margin AT (ALL region) AS companyMargin
           FROM Sales WHERE region = 'north'
           GROUP BY orderYear ORDER BY orderYear"""
    ).pretty()
)

print("\nPanel 5: subtotals with ROLLUP; measures respect the grouping sets")
print(
    db.execute(
        """SELECT category, orderYear, AGGREGATE(revenue) AS revenue,
                  revenue / revenue AT (ALL category, orderYear) AS shareOfTotal
           FROM Sales
           GROUP BY ROLLUP(category, orderYear)
           ORDER BY category NULLS LAST, orderYear NULLS LAST"""
    ).pretty(max_rows=15)
)

print("\nPanel 6: revenue cross-tab, regions x years (PIVOT)")
print(
    db.execute(
        """SELECT * FROM
             (SELECT c.region, YEAR(o.orderDate) AS y, o.revenue
              FROM Orders AS o JOIN Customers AS c USING (custName))
             PIVOT(SUM(revenue) FOR y IN (2020 AS y2020, 2021 AS y2021,
                                          2022 AS y2022, 2023 AS y2023))
           ORDER BY region"""
    ).pretty()
)

print("\nPanel 7: products that beat their category's average order value")
print(
    db.execute(
        """SELECT s.prodName, s.category FROM
           (SELECT prodName, category, revenue,
                   AVG(revenue) AS MEASURE avgOrderValue FROM Orders
            JOIN Products USING (prodName)) AS s
           WHERE s.revenue >
                 s.avgOrderValue AT (WHERE category = s.category)
           GROUP BY s.prodName, s.category
           ORDER BY s.category, s.prodName LIMIT 10"""
    ).pretty()
)
