"""Time comparisons with SET and CURRENT (paper sections 3.5 and 6.5).

Year-over-year, trailing comparisons, gap handling, and a simple
"measure over a context with no rows" demonstration — the question the
paper's future-work section asks.

Run with::

    python examples/year_over_year.py
"""

from repro.workloads import WorkloadConfig, workload_database

db = workload_database(WorkloadConfig(orders=4000, products=8, customers=30))

db.execute(
    """CREATE VIEW S AS
       SELECT prodName, YEAR(orderDate) AS y, QUARTER(orderDate) AS q,
              SUM(revenue) AS MEASURE rev,
              COUNT(*) AS MEASURE n
       FROM Orders"""
)

print("Year-over-year revenue (NULL ratio where there is no prior year):")
print(
    db.execute(
        """SELECT y, AGGREGATE(rev) AS revenue,
                  rev AT (SET y = CURRENT y - 1) AS lastYear,
                  rev / rev AT (SET y = CURRENT y - 1) - 1 AS growth
           FROM S GROUP BY y ORDER BY y"""
    ).pretty()
)

print("\nQuarter vs same quarter last year, per product:")
print(
    db.execute(
        """SELECT prodName, y, q,
                  AGGREGATE(rev) AS revenue,
                  rev AT (SET y = CURRENT y - 1) AS sameQuarterLastYear
           FROM S WHERE y = 2023
           GROUP BY prodName, y, q
           ORDER BY prodName, q LIMIT 12"""
    ).pretty()
)

print("\nShare of the year contributed by each quarter:")
print(
    db.execute(
        """SELECT y, q, AGGREGATE(rev) AS revenue,
                  rev / rev AT (ALL q) AS shareOfYear
           FROM S GROUP BY y, q ORDER BY y, q LIMIT 8"""
    ).pretty()
)

print("\nEvaluating a measure where no rows exist (SUM over nothing is NULL,")
print("so downstream arithmetic stays NULL instead of lying):")
print(
    db.execute(
        """SELECT y, rev AT (SET y = 1999) AS revIn1999,
                  n AT (SET y = 1999) AS ordersIn1999
           FROM S GROUP BY y ORDER BY y LIMIT 1"""
    ).pretty()
)

print("\nCumulative flavor via window functions on top of measure output")
print("(queries over measure views stay closed, so this is ordinary SQL):")
print(
    db.execute(
        """SELECT y, revenue,
                  SUM(revenue) OVER (ORDER BY y) AS cumulative
           FROM (SELECT y, AGGREGATE(rev) AS revenue FROM S GROUP BY y)
           ORDER BY y"""
    ).pretty()
)
