"""The semantic-layer story (paper sections 3.2, 5.5, 5.6).

An expert encapsulates the business calculations — including columns the
analyst must never see — in a view with measures.  The analyst queries the
view like any table: the formulas are reusable, consistent, and the hidden
columns are unreachable, yet the measures still compute over them.

Run with::

    python examples/semantic_layer.py
"""

from repro import BindError, Database
from repro.workloads import WorkloadConfig, load_workload

db = Database()
load_workload(db, WorkloadConfig(orders=2000, products=12, customers=40))

# -- The expert's job: define once, in one place ------------------------------
#
# The view exposes prodName and orderYear as dimensions.  revenue and cost
# stay hidden: only the calculations escape, as measures.

db.execute(
    """CREATE VIEW ProductFinance AS
       SELECT prodName, YEAR(orderDate) AS orderYear,
              SUM(revenue) AS MEASURE totalRevenue,
              (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE grossMargin,
              SUM(revenue - cost) AS MEASURE grossProfit,
              COUNT(*) AS MEASURE orderCount,
              SUM(revenue) / COUNT(*) AS MEASURE avgOrderValue
       FROM Orders"""
)

# -- The analyst's job: ask questions ------------------------------------------

print("Gross margin by product (the analyst never typed a formula):")
print(
    db.execute(
        """SELECT prodName, AGGREGATE(grossMargin) AS margin,
                  AGGREGATE(avgOrderValue) AS aov
           FROM ProductFinance GROUP BY prodName
           ORDER BY margin DESC LIMIT 5"""
    ).pretty()
)

print("\nThe same measures, different question, zero duplication:")
print(
    db.execute(
        """SELECT orderYear, AGGREGATE(grossProfit) AS profit,
                  grossProfit / grossProfit AT (ALL orderYear) AS shareOfAllTime
           FROM ProductFinance GROUP BY orderYear ORDER BY orderYear"""
    ).pretty()
)

# -- Security: the hologram, not the pixels (paper section 5.5) ---------------

print("\nHidden columns are unreachable:")
for column in ("revenue", "cost", "custName"):
    try:
        db.execute(f"SELECT {column} FROM ProductFinance LIMIT 1")
    except BindError as exc:
        print(f"  SELECT {column} -> {exc}")

print(
    "\n...but the measures still compute over them "
    "(the view is a bounded interface to the data):"
)
print(
    db.execute(
        "SELECT AGGREGATE(totalRevenue) AS allRevenue FROM ProductFinance"
    ).pretty()
)

# Predicates can only address the exposed dimensions: two underlying rows
# that agree on every dimension are indistinguishable through the view.
print("\nContexts are expressible only over exposed dimensions:")
print(
    db.execute(
        """SELECT prodName,
                  totalRevenue AT (WHERE orderYear = 2023) AS r2023
           FROM ProductFinance GROUP BY prodName
           ORDER BY r2023 DESC LIMIT 3"""
    ).pretty()
)

# -- Composition: a second expert builds on the first --------------------------

db.execute(
    """CREATE VIEW ProductFinanceQoQ AS
       SELECT prodName, AGGREGATE(grossProfit) AS MEASURE profit
       FROM ProductFinance"""
)
print("\nA view composed over the first view's measures:")
print(
    db.execute(
        """SELECT prodName, AGGREGATE(profit) AS profit
           FROM ProductFinanceQoQ GROUP BY prodName
           ORDER BY profit DESC LIMIT 3"""
    ).pretty()
)
