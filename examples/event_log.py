"""Log-file analytics with measures (paper section 6.6).

Event logs have a processing context: the current record, its session
siblings, and values computed over the whole session.  Measures express
those declaratively: a session-grain measure attached to the raw event
table replaces the usual pile of self-joins.

Run with::

    python examples/event_log.py
"""

import random

from repro import Database

rng = random.Random(11)
db = Database()
db.execute(
    """CREATE TABLE events (
         sessionId INTEGER, seq INTEGER, page VARCHAR, msOnPage INTEGER)"""
)
pages = ["home", "search", "product", "cart", "checkout"]
rows = []
for session in range(1, 31):
    length = rng.randint(1, 8)
    for seq in range(1, length + 1):
        depth = min(seq - 1, len(pages) - 1)
        page = pages[rng.randint(0, depth)]
        rows.append((session, seq, page, rng.randint(200, 30_000)))
for row in rows:
    db.execute(f"INSERT INTO events VALUES ({row[0]}, {row[1]}, '{row[2]}', {row[3]})")

# Session-grain calculations, defined once on the raw events.
db.execute(
    """CREATE VIEW SessionStats AS
       SELECT sessionId, page,
              COUNT(*) AS MEASURE hits,
              SUM(msOnPage) / 1000.0 AS MEASURE seconds,
              MAX(seq) AS MEASURE pathLength,
              COUNTIF(page = 'checkout') AS MEASURE checkouts
       FROM events"""
)

print("Sessions that converted, with their total dwell time:")
print(
    db.execute(
        """SELECT sessionId, AGGREGATE(seconds) AS dwell,
                  AGGREGATE(pathLength) AS pathLen
           FROM SessionStats
           GROUP BY sessionId
           HAVING AGGREGATE(checkouts) > 0
           ORDER BY dwell DESC LIMIT 5"""
    ).pretty()
)

print("\nPer-page hit share — each event row against its session context:")
print(
    db.execute(
        """SELECT page, AGGREGATE(hits) AS hits,
                  hits / hits AT (ALL page) AS shareOfAllHits
           FROM SessionStats GROUP BY page ORDER BY hits DESC"""
    ).pretty()
)

print("\nEvents in sessions longer than the average session")
print("(the session-level aggregate is a measure; no self-join):")
print(
    db.execute(
        """SELECT s.sessionId, AGGREGATE(s.hits) AS events
           FROM SessionStats AS s
           GROUP BY s.sessionId
           HAVING AGGREGATE(s.pathLength) >
                  (SELECT AVG(n) FROM
                     (SELECT sessionId, MAX(seq) AS n FROM events
                      GROUP BY sessionId))
           ORDER BY events DESC LIMIT 5"""
    ).pretty()
)

print("\nConversion funnel (share of sessions reaching each page):")
print(
    db.execute(
        """SELECT page,
                  COUNT(DISTINCT sessionId) AS sessions,
                  COUNT(DISTINCT sessionId) * 1.0 /
                    (SELECT COUNT(DISTINCT sessionId) FROM events) AS reach
           FROM events GROUP BY page ORDER BY sessions DESC"""
    ).pretty()
)
