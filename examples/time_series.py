"""Time series and forecasting with measures (paper section 6.5).

The paper asks: "How can I evaluate a measure on a table that has no rows?"
Measures answer naturally — the evaluation context is a predicate, so you can
ask for any context you like, including months with no orders.  A calendar
table synthesizes the missing dimension values; the measure fills the cells,
NULL where the business was closed.

A trailing-average "forecast" measure then extrapolates the next period,
showing the expert-encapsulates/user-consumes pattern the paper sketches.

Run with::

    python examples/time_series.py
"""

from repro.workloads import WorkloadConfig, workload_database

db = workload_database(WorkloadConfig(orders=1500, products=8, customers=30, years=2))

# The measure model: revenue at monthly grain.
db.execute(
    """CREATE VIEW MonthlySales AS
       SELECT YEAR(orderDate) AS y, MONTH(orderDate) AS m,
              SUM(revenue) AS MEASURE rev,
              COUNT(*) AS MEASURE orders
       FROM Orders"""
)

# A calendar of every month, whether or not it has orders: the row
# synthesizer the paper calls for.  (Generated in SQL for the demo; a real
# deployment would keep a calendar dimension table.)
db.execute("CREATE TABLE Calendar (y INTEGER, m INTEGER)")
for year in (2020, 2021):
    for month in range(1, 13):
        db.execute(f"INSERT INTO Calendar VALUES ({year}, {month})")

print("Monthly revenue with gaps filled (NULL = no orders that month):")
print(
    db.execute(
        """SELECT c.y, c.m,
                  s.rev AT (WHERE y = c.y AND m = c.m) AS revenue
           FROM Calendar AS c CROSS JOIN (SELECT * FROM MonthlySales ORDER BY y, m LIMIT 1) AS s
           ORDER BY c.y, c.m LIMIT 12"""
    ).pretty()
)

# Simpler spelling with a measure-bearing join: evaluate the measure per
# calendar row by pinning its dimensions to the calendar's columns.
print("\nMoM growth over the synthesized axis:")
print(
    db.execute(
        """SELECT c.y, c.m,
                  s.rev AT (WHERE y = c.y AND m = c.m) AS revenue,
                  s.rev AT (WHERE y = c.y AND m = c.m)
                    / s.rev AT (WHERE (y = c.y AND m = c.m - 1)
                                OR (y = c.y - 1 AND m = 12 AND c.m = 1)) - 1
                    AS growth
           FROM Calendar AS c CROSS JOIN (SELECT * FROM MonthlySales ORDER BY y, m LIMIT 1) AS s
           WHERE c.y = 2021
           ORDER BY c.y, c.m LIMIT 6"""
    ).pretty()
)

# Forecast: the expert wraps a trailing-3-month average into a measure-like
# view; the user consumes "forecast" without seeing the statistics.
db.execute(
    """CREATE VIEW RevenueByMonth AS
       SELECT y, m, AGGREGATE(rev) AS revenue
       FROM MonthlySales GROUP BY y, m"""
)
print("\nTrailing-average forecast for the next month (expert-defined):")
print(
    db.execute(
        """SELECT y, m, revenue,
                  AVG(revenue) OVER (ORDER BY y, m
                    ROWS BETWEEN 3 PRECEDING AND 1 PRECEDING) AS forecast,
                  revenue - AVG(revenue) OVER (ORDER BY y, m
                    ROWS BETWEEN 3 PRECEDING AND 1 PRECEDING) AS surprise
           FROM RevenueByMonth
           ORDER BY y, m LIMIT 10"""
    ).pretty()
)

# Resampling: the same measure at a coarser temporal grain, no new formula.
print("\nThe same measure resampled to quarters (ad hoc dimension):")
print(
    db.execute(
        """SELECT y, CEIL(m / 3.0) AS quarter, AGGREGATE(rev) AS revenue
           FROM MonthlySales GROUP BY y, CEIL(m / 3.0)
           ORDER BY y, quarter"""
    ).pretty()
)
