"""Integrating a BI tool: metadata, parameters, and expansion.

The paper's section 5.6 describes Looker's Open SQL Interface: every Explore
appears as a SQL table whose measures are measure columns, and third-party
tools (Sheets, Power BI, Tableau) query it like a database.  This example
plays the role of such a tool against this engine:

1. discover the semantic model through ``describe()``;
2. generate parameterized dashboard queries from the metadata alone;
3. show end users the plain SQL a measure query means (``expand``).

Run with::

    python examples/bi_tool_metadata.py
"""

import json

from repro.workloads import WorkloadConfig, workload_database

db = workload_database(WorkloadConfig(orders=3000, products=10, customers=40))

# The modelling team publishes one semantic view.
db.execute(
    """CREATE VIEW SalesExplore AS
       SELECT o.prodName, p.category, YEAR(o.orderDate) AS orderYear,
              SUM(o.revenue) AS MEASURE totalRevenue,
              (SUM(o.revenue) - SUM(o.cost)) / SUM(o.revenue) AS MEASURE margin,
              COUNT(*) AS MEASURE orderCount
       FROM Orders AS o JOIN Products AS p ON o.prodName = p.prodName"""
)

# -- 1. The tool discovers dimensions and measures -----------------------------
metadata = db.describe("SalesExplore")
print("Model metadata the tool sees:")
print(json.dumps(metadata, indent=2))

dimensions = [c["name"] for c in metadata["columns"] if not c["measure"]]
measures = [m["name"] for m in metadata["measures"]]
print(f"\ndimensions: {dimensions}")
print(f"measures:   {measures}")

# -- 2. It generates queries mechanically --------------------------------------
dimension = dimensions[1]  # category
generated = (
    f"SELECT {dimension}, "
    + ", ".join(f"AGGREGATE({m}) AS {m}" for m in measures)
    + f" FROM SalesExplore GROUP BY {dimension} ORDER BY totalRevenue DESC"
)
print(f"\nGenerated query:\n  {generated}")
print(db.execute(generated).pretty())

# A filtered panel uses parameters rather than string concatenation.
print("\nParameterized drill-down (category = ?, year >= ?):")
print(
    db.execute(
        """SELECT prodName, AGGREGATE(totalRevenue) AS revenue
           FROM SalesExplore WHERE category = ? AND orderYear >= ?
           GROUP BY prodName ORDER BY revenue DESC LIMIT 5""",
        ("toys", 2021),
    ).pretty()
)

# -- 3. Transparency: what does that measure query mean in plain SQL? ---------
print("\nThe engine can always show its work:")
print(
    db.expand(
        "SELECT category, AGGREGATE(margin) FROM SalesExplore GROUP BY category"
    )
)

# -- 4. The DBA accelerates the dashboard with a summary table ----------------
db.execute(
    """CREATE MATERIALIZED VIEW SalesByProduct AS
       SELECT prodName, AGGREGATE(totalRevenue) AS totalRevenue,
              AGGREGATE(orderCount) AS orderCount
       FROM SalesExplore GROUP BY prodName"""
)

print("\nMaterialized views the tool can discover:")
for view in db.catalog.materialized_views():
    info = db.describe(view.name)
    state = "stale" if info["stale"] else "fresh"
    print(
        f"  {info['name']} ({info['kind']}, {state}) over {info['source']}: "
        f"dimensions {info['dimensions']}, "
        f"measures {[m['name'] + '/' + m['rollup'] for m in info['measures']]}"
    )

panel = """SELECT prodName, AGGREGATE(totalRevenue) AS revenue
           FROM SalesExplore GROUP BY prodName ORDER BY revenue DESC LIMIT 3"""
print("\nTop products panel (answered from the summary):")
print(db.execute(panel).pretty())
for (line,) in db.execute(f"EXPLAIN {panel}").rows:
    if line.startswith("summary:"):
        print(f"  {line}")
print(f"summary stats: {json.dumps(db.summary_stats())}")
