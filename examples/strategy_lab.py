"""Strategy lab: how a measure query actually executes (paper sections 4.2,
5.1, 6.4).

Shows the same query under the top-down interpreter (with the
"localized self-join" cache), the general correlated-subquery expansion,
the inline rewrite, and the window-aggregate rewrite — with work counters.

Run with::

    python examples/strategy_lab.py
"""

import time

from repro.workloads import WorkloadConfig, workload_database

db = workload_database(WorkloadConfig(orders=3000, products=15, customers=40))
db.execute(
    """CREATE VIEW eo AS
       SELECT prodName, custName, YEAR(orderDate) AS y,
              SUM(revenue) AS MEASURE rev,
              AVG(revenue) AS MEASURE avgRev
       FROM Orders"""
)

AGG_QUERY = "SELECT prodName, AGGREGATE(rev) AS r FROM eo GROUP BY prodName ORDER BY prodName"
ROW_QUERY = """SELECT o.prodName, o.orderDate FROM
               (SELECT prodName, orderDate, revenue,
                       AVG(revenue) AS MEASURE a FROM Orders) AS o
               WHERE o.revenue > o.a AT (WHERE prodName = o.prodName)"""


def timed(label, fn, *args):
    start = time.perf_counter()
    result = fn(*args)
    elapsed = (time.perf_counter() - start) * 1000
    print(f"  {label:35s} {elapsed:8.1f} ms  ({len(result.rows)} rows)")
    return result


print("== An aggregate-site measure query ==")
print(AGG_QUERY)

print("\n1. Interpreter (top-down contexts, memoized):")
timed("interpret", db.execute, AGG_QUERY)
stats = db.last_stats
print(
    f"     measure evaluations: {stats.measure_evaluations}, "
    f"cache hits: {stats.measure_cache_hits}"
)

print("\n2. General expansion (paper section 4.2 — Listing 5's shape):")
expanded = db.expand(AGG_QUERY)
print(f"   {expanded[:110]}...")
timed("execute expanded SQL", db.execute, expanded)
print(
    f"     correlated subquery executions: {db.last_stats.subquery_executions}, "
    f"cache hits: {db.last_stats.subquery_cache_hits}"
)

print("\n3. Inline rewrite (valid for this simple GROUP BY shape):")
inlined = db.expand(AGG_QUERY, strategy="inline")
print(f"   {inlined}")
timed("execute inlined SQL", db.execute, inlined)

print("\n\n== A row-site measure query (Listing 12's query 4) ==")
print(ROW_QUERY)

print("\n1. Interpreter:")
timed("interpret", db.execute, ROW_QUERY)

print("\n2. Window rewrite (the measures/OVER correspondence, section 5.1):")
windowed = db.expand(ROW_QUERY, strategy="window")
print(f"   {windowed[:110]}...")
timed("execute windowed SQL", db.execute, windowed)

print("\n3. Subquery rewrite:")
sub = db.expand(ROW_QUERY, strategy="subquery")
timed("execute subquery SQL", db.execute, sub)

print("\n4. WinMagic (Zuzarte et al. 2003): the expanded correlated subquery")
print("   rewritten back to a window aggregate, closing the section 5.1 loop:")
from repro.core.winmagic import winmagic_rewrite
from repro.sql import parse_query, to_sql

Q1 = """SELECT o.prodName, o.orderDate FROM Orders AS o
        WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
                           WHERE o1.prodName = o.prodName)"""
winmagicked = to_sql(winmagic_rewrite(db, parse_query(Q1)))
print(f"   {winmagicked[:110]}...")
timed("execute WinMagic SQL", db.execute, winmagicked)
timed("execute original q1", db.execute, Q1)

print("\nAll strategies return the same rows:")
rows = {
    "interpret": sorted(db.execute(ROW_QUERY).rows),
    "window": sorted(db.execute(windowed).rows),
    "subquery": sorted(db.execute(sub).rows),
}
baseline = rows["interpret"]
print(f"  agree: {all(r == baseline for r in rows.values())}")

print("\nEXPLAIN EXPAND works inside SQL too:")
print(db.execute(f"EXPLAIN EXPAND {AGG_QUERY}").scalar()[:140] + "...")
