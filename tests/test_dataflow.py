"""Typed dataflow analysis: inference, operator facts, fact-justified
optimizer rewrites, EXPLAIN (TYPES), profile annotations, the lock-discipline
checker, and the evaluator's error-span regressions."""

from __future__ import annotations

import textwrap

import pytest

from repro import Database
from repro.analysis.dataflow import (
    NOT_CONST,
    analyze_plan,
    explain_types_lines,
    facts_summary,
    is_null_rejecting,
)
from repro.errors import ExecutionError
from repro.plan import logical as plans
from repro.semantics import bound as b
from repro.semantics.binder import Binder
from repro.sql import parse_query
from repro.types import BOOLEAN, INTEGER, UNKNOWN, VARCHAR
from repro.workloads.listings import LISTINGS, SETUP
from repro.workloads.paper_data import load_paper_tables


def bound_plan(db: Database, sql: str) -> plans.LogicalPlan:
    """Bind without optimizing: spans and operator shapes stay as written."""
    plan, _ = Binder(db.catalog).bind_query_top(parse_query(sql))
    return plan


def facts_of(db: Database, sql: str):
    plan = bound_plan(db, sql)
    return analyze_plan(plan, db.catalog), plan


def optimized_plan(db: Database, sql: str) -> plans.LogicalPlan:
    return db.plan_query(parse_query(sql), sql=sql).plan


def tree_ops(plan: plans.LogicalPlan) -> list[str]:
    return [type(node).__name__ for node in plan.walk()]


# ---------------------------------------------------------------------------
# Expression-level inference
# ---------------------------------------------------------------------------


class TestInferExpr:
    def test_literal_is_constant_and_typed(self, paper_db):
        facts, _ = facts_of(paper_db, "SELECT 42, 'x', NULL FROM Orders")
        num, text, null = facts.columns
        assert num.dtype.unwrap() is INTEGER and num.const == 42
        assert not num.nullable
        assert text.dtype.unwrap() is VARCHAR and text.const == "x"
        assert null.nullable and null.const is None

    def test_strict_op_preserves_non_nullability(self, db):
        # VALUES literals are provably non-null, and + is strict.
        facts, _ = facts_of(db, "SELECT col1 + 1 FROM (VALUES (1), (2)) AS v")
        assert not facts.columns[0].nullable

    def test_strict_op_with_nullable_input_stays_nullable(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        facts, _ = facts_of(db, "SELECT v * 2 FROM t")
        assert facts.columns[0].nullable

    def test_between_is_not_null_strict(self, db):
        # x BETWEEN NULL AND 5 is FALSE (not NULL) when x > 5, so BETWEEN
        # must not fold to NULL the way strict operators do.
        db.execute("CREATE TABLE t (v INTEGER)")
        db.execute("INSERT INTO t VALUES (7)")
        assert db.execute(
            "SELECT v BETWEEN NULL AND 5 FROM t"
        ).rows == [(False,)]
        facts, _ = facts_of(db, "SELECT v BETWEEN NULL AND 5 FROM t")
        assert facts.columns[0].const is NOT_CONST

    def test_is_null_and_coalesce_never_null(self, db):
        db.execute("CREATE TABLE t (v INTEGER)")
        facts, _ = facts_of(
            db, "SELECT v IS NULL, COALESCE(v, 0) FROM t"
        )
        is_null, coalesced = facts.columns
        assert is_null.dtype.unwrap() is BOOLEAN and not is_null.nullable
        assert not coalesced.nullable

    def test_constant_arithmetic_folds_through_inference(self, paper_db):
        facts, _ = facts_of(paper_db, "SELECT 2 + 3 * 4 FROM Orders")
        assert facts.columns[0].const == 14

    def test_comparison_of_constants_is_constant(self, paper_db):
        facts, _ = facts_of(paper_db, "SELECT 1 < 2 FROM Orders")
        assert facts.columns[0].const is True


# ---------------------------------------------------------------------------
# Operator-level facts
# ---------------------------------------------------------------------------


class TestOperatorFacts:
    def test_scan_carries_exact_cardinality_and_schema(self, paper_db):
        facts, plan = facts_of(paper_db, "SELECT * FROM Orders")
        scan = [n for n in plan.walk() if isinstance(n, plans.Scan)][0]
        assert scan.facts is not None
        assert scan.facts.row_min == scan.facts.row_max == 5
        names = [col.name for col in scan.facts.columns]
        assert "revenue" in names and "prodName" in names

    def test_every_node_gets_facts(self, paper_db):
        _, plan = facts_of(
            paper_db,
            "SELECT prodName, SUM(revenue) FROM Orders "
            "WHERE revenue > 10 GROUP BY prodName ORDER BY prodName",
        )
        for node in plan.walk():
            assert node.facts is not None, type(node).__name__

    def test_filter_equality_pins_column_to_constant(self, paper_db):
        facts, _ = facts_of(
            paper_db,
            "SELECT prodName FROM Orders WHERE prodName = 'Happy'",
        )
        assert facts.columns[0].const == "Happy"

    def test_aggregate_group_keys_become_unique(self, paper_db):
        facts, _ = facts_of(
            paper_db,
            "SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName",
        )
        assert frozenset([0]) in facts.keys

    def test_global_aggregate_is_exactly_one_row(self, paper_db):
        facts, _ = facts_of(paper_db, "SELECT SUM(revenue) FROM Orders")
        assert facts.row_min == facts.row_max == 1
        assert facts.keys == (frozenset(),)

    def test_limit_caps_row_bounds(self, paper_db):
        facts, _ = facts_of(paper_db, "SELECT * FROM Orders LIMIT 2")
        assert facts.row_max == 2

    def test_distinct_on_key_preserves_cardinality(self, paper_db):
        facts, _ = facts_of(paper_db, "SELECT DISTINCT custName FROM Customers")
        # custName is unique in Customers (3 rows), so DISTINCT is a no-op
        # cardinality-wise.
        assert facts.row_max == 3

    def test_left_join_marks_padded_columns(self, paper_db):
        _, plan = facts_of(
            paper_db,
            "SELECT o.prodName, c.custAge FROM Orders AS o "
            "LEFT JOIN Customers AS c ON o.custName = c.custName",
        )
        join = [n for n in plan.walk() if isinstance(n, plans.Join)][0]
        left_width = len(join.left.facts.columns)
        right_side = join.facts.columns[left_width:]
        assert right_side and all(col.padded for col in right_side)
        assert all(not col.padded for col in join.facts.columns[:left_width])

    def test_join_on_unique_key_does_not_multiply_rows(self, paper_db):
        facts, _ = facts_of(
            paper_db,
            "SELECT o.revenue FROM Orders AS o "
            "JOIN (SELECT custName FROM Customers GROUP BY custName) AS c "
            "ON o.custName = c.custName",
        )
        # The right side is keyed on custName (its GROUP BY key), so the
        # join can at most preserve Orders' five rows.
        assert facts.row_max == 5

    def test_values_facts(self, db):
        facts, _ = facts_of(db, "SELECT * FROM (VALUES (1, 'a'), (2, 'b')) AS v")
        assert facts.row_min == facts.row_max == 2
        n, s = facts.columns
        assert n.dtype.unwrap() is INTEGER and not n.nullable
        assert s.dtype.unwrap() is VARCHAR

    def test_union_all_adds_bounds(self, paper_db):
        facts, _ = facts_of(
            paper_db,
            "SELECT custName FROM Customers UNION ALL SELECT custName FROM Customers",
        )
        assert facts.row_min == facts.row_max == 6


class TestNullRejecting:
    def _filter_over_join(self, db, sql):
        plan = bound_plan(db, sql)
        filt = [n for n in plan.walk() if isinstance(n, plans.Filter)][0]
        join = [n for n in plan.walk() if isinstance(n, plans.Join)][0]
        facts = analyze_plan(join, db.catalog)
        padded = {
            offset for offset, col in enumerate(facts.columns) if col.padded
        }
        return filt.predicate, facts, padded

    def test_strict_comparison_rejects_padded_nulls(self, paper_db):
        predicate, facts, padded = self._filter_over_join(
            paper_db,
            "SELECT o.revenue, c.custAge FROM Orders AS o "
            "LEFT JOIN Customers AS c ON o.custName = c.custName "
            "WHERE c.custAge > 30",
        )
        assert padded
        assert is_null_rejecting(predicate, facts, padded)

    def test_is_null_predicate_is_not_null_rejecting(self, paper_db):
        predicate, facts, padded = self._filter_over_join(
            paper_db,
            "SELECT o.revenue FROM Orders AS o "
            "LEFT JOIN Customers AS c ON o.custName = c.custName "
            "WHERE c.custAge IS NULL",
        )
        assert not is_null_rejecting(predicate, facts, padded)


# ---------------------------------------------------------------------------
# Fact-justified optimizer rewrites
# ---------------------------------------------------------------------------


# Paper Listing 12 (query 2): a LEFT JOIN whose WHERE clause compares a
# right-side column.  The dataflow analysis proves the predicate rejects
# padded rows, so the optimizer strengthens the join to INNER.
LISTING12_Q2 = LISTINGS["listing12_q2"]


class TestOptimizerRewrites:
    def test_contradiction_becomes_empty_values(self, paper_db):
        plan = optimized_plan(paper_db, "SELECT revenue FROM Orders WHERE 1 = 2")
        ops = tree_ops(plan)
        assert "Scan" not in ops
        assert "ValuesPlan" in ops
        assert paper_db.execute("SELECT revenue FROM Orders WHERE 1 = 2").rows == []

    def test_strict_null_predicate_folds_to_empty(self, paper_db):
        plan = optimized_plan(
            paper_db, "SELECT revenue FROM Orders WHERE revenue = NULL"
        )
        assert "Scan" not in tree_ops(plan)
        assert (
            paper_db.execute("SELECT revenue FROM Orders WHERE revenue = NULL").rows
            == []
        )

    def test_tautology_drops_filter(self, paper_db):
        plan = optimized_plan(paper_db, "SELECT revenue FROM Orders WHERE 1 = 1")
        assert "Filter" not in tree_ops(plan)
        assert len(paper_db.execute("SELECT revenue FROM Orders WHERE 1 = 1").rows) == 5

    def test_constant_folding_in_projections(self, paper_db):
        plan = optimized_plan(paper_db, "SELECT revenue + (2 + 3) FROM Orders")
        project = [n for n in plan.walk() if isinstance(n, plans.Project)][0]
        folded = [
            node
            for expr in project.exprs
            for node in b.walk(expr)
            if isinstance(node, b.BoundLiteral) and node.value == 5
        ]
        assert folded, "2 + 3 should fold to a single literal 5"

    def test_folding_does_not_hide_runtime_errors(self, paper_db):
        # 1/0 under a CASE arm that never executes must not be folded into
        # an error at plan time, and must still raise when executed.
        rows = paper_db.execute(
            "SELECT CASE WHEN revenue > 0 THEN 1 ELSE 1/0 END FROM Orders"
        ).rows
        assert rows == [(1,)] * 5
        with pytest.raises(ExecutionError):
            paper_db.execute("SELECT 1/0 FROM Orders")

    def test_null_rejecting_filter_strengthens_left_join(self, paper_db):
        """The acceptance proof: a paper listing's plan changes under the
        dataflow-justified LEFT->INNER rewrite with identical results."""
        plan = optimized_plan(paper_db, LISTING12_Q2)
        joins = [n for n in plan.walk() if isinstance(n, plans.Join)]
        assert joins and all(j.kind == "INNER" for j in joins)

        unopt = Database()
        load_paper_tables(unopt)
        unopt.optimizer_enabled = False
        unopt_plan = unopt.plan_query(
            parse_query(LISTING12_Q2), sql=LISTING12_Q2
        ).plan
        unopt_joins = [
            n for n in unopt_plan.walk() if isinstance(n, plans.Join)
        ]
        assert any(j.kind == "LEFT" for j in unopt_joins)
        baseline = unopt.execute(LISTING12_Q2).rows
        assert paper_db.execute(LISTING12_Q2).rows == baseline

    def test_explain_shows_the_strengthened_join(self, paper_db):
        text = "\n".join(
            row[0] for row in paper_db.execute("EXPLAIN " + LISTING12_Q2).rows
        )
        assert "INNER" in text and "LEFT" not in text

    def test_optimizer_survives_validator(self):
        db = Database(validate=True)
        load_paper_tables(db)
        assert db.execute("SELECT revenue FROM Orders WHERE 1 = 2").rows == []
        assert len(db.execute(LISTING12_Q2).rows) > 0


# ---------------------------------------------------------------------------
# EXPLAIN (TYPES) and profile annotations
# ---------------------------------------------------------------------------


class TestExplainTypes:
    def test_explain_types_renders_per_node_facts(self, paper_db):
        rows = paper_db.execute(
            "EXPLAIN (TYPES) SELECT prodName, SUM(revenue) AS r "
            "FROM Orders GROUP BY prodName"
        ).rows
        text = "\n".join(row[0] for row in rows)
        assert "Aggregate" in text and "Scan" in text
        assert "rows=" in text and "key=" in text
        assert "VARCHAR" in text

    def test_explain_types_matches_dataflow_renderer(self, paper_db):
        sql = "SELECT revenue FROM Orders LIMIT 2"
        rows = paper_db.execute(f"EXPLAIN (TYPES) {sql}").rows
        plan = optimized_plan(paper_db, sql)
        assert [row[0] for row in rows] == explain_types_lines(
            plan, paper_db.catalog
        )

    def test_explain_lint_types_combination(self, paper_db):
        rows = paper_db.execute(
            "EXPLAIN (LINT, TYPES) SELECT revenue FROM Orders"
        ).rows
        text = "\n".join(row[0] for row in rows)
        assert text.startswith("lint:")
        assert "rows=" in text

    def test_explain_analyze_types_combination(self, paper_db):
        rows = paper_db.execute(
            "EXPLAIN (ANALYZE, TYPES) SELECT revenue FROM Orders"
        ).rows
        text = "\n".join(row[0] for row in rows)
        # Observed tree first, then the predicted facts under "types:".
        assert "calls=1" in text
        assert "types:" in text
        assert "INTEGER" in text.split("types:")[1]

    def test_profile_nodes_carry_facts(self, paper_db):
        paper_db.profile_enabled = True
        paper_db.execute("SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName")
        profile = paper_db.last_profile()
        tree = profile.to_dict()["plan"]
        stack = [tree]
        seen = 0
        while stack:
            node = stack.pop()
            if "facts" in node:
                seen += 1
                assert "columns" in node["facts"]
                assert "row_min" in node["facts"]
                assert "row_max" in node["facts"]
            stack.extend(node.get("children", []))
        assert seen > 0

    def test_facts_summary_shape(self, paper_db):
        facts, _ = facts_of(paper_db, "SELECT SUM(revenue) AS r FROM Orders")
        summary = facts_summary(facts)
        assert summary["row_min"] == summary["row_max"] == 1
        assert summary["columns"][0]["name"] == "r"


class TestSelfCheckTypes:
    def test_all_listings_fully_typed(self, paper_db):
        """The CI gate's property: zero UNKNOWN output types on the paper
        listings, and facts on every operator."""
        for ddl in SETUP.values():
            paper_db.execute(ddl)
        for name, sql in LISTINGS.items():
            planned = paper_db.plan_query(parse_query(sql), sql=sql)
            for node in planned.plan.walk():
                assert node.facts is not None, f"{name}: {type(node).__name__}"
            for col in planned.plan.facts.columns:
                assert col.dtype.unwrap() is not UNKNOWN, f"{name}: {col.name}"


# ---------------------------------------------------------------------------
# Lock-discipline checker
# ---------------------------------------------------------------------------


class TestLockCheck:
    def _check(self, tmp_path, source: str):
        from repro.analysis.lockcheck import check_file

        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent(source))
        return check_file(path, "server/mod.py")

    def test_unguarded_access_is_flagged(self, tmp_path):
        findings = self._check(
            tmp_path,
            """
            def handler(db):
                return db.execute("SELECT 1")
            """,
        )
        assert len(findings) == 1
        assert findings[0].member == "execute"
        assert findings[0].line > 0

    def test_guarded_access_is_clean(self, tmp_path):
        findings = self._check(
            tmp_path,
            """
            def handler(db, lock):
                with lock.rwlock.read():
                    return db.execute("SELECT 1")
            """,
        )
        assert findings == []

    def test_closure_inside_with_block_is_still_flagged(self, tmp_path):
        # The closure runs after the with-block releases the lock, so the
        # lexical guard must not cover it.
        findings = self._check(
            tmp_path,
            """
            def handler(db, lock):
                with lock.rwlock.write():
                    def later():
                        return db.catalog.names()
                    return later
            """,
        )
        assert [f.member for f in findings] == ["catalog"]

    def test_unguarded_after_with_block_is_flagged(self, tmp_path):
        findings = self._check(
            tmp_path,
            """
            def handler(db, lock):
                with lock.rwlock.read():
                    pass
                return db.catalog
            """,
        )
        assert [f.member for f in findings] == ["catalog"]

    def test_non_db_receiver_is_ignored(self, tmp_path):
        findings = self._check(
            tmp_path,
            """
            def handler(conn):
                return conn.execute("SELECT 1")
            """,
        )
        assert findings == []

    def test_real_tree_is_clean(self, capsys):
        from repro.analysis.lockcheck import run_lock_check

        assert run_lock_check() == 0
        out = capsys.readouterr().out
        assert "0 finding" in out


# ---------------------------------------------------------------------------
# Evaluator error spans (regression tests for the bugfix satellite)
# ---------------------------------------------------------------------------


class TestEvaluatorSpans:
    def test_cast_failure_carries_source_span(self, paper_db):
        with pytest.raises(ExecutionError) as exc_info:
            paper_db.execute("SELECT CAST(prodName AS INTEGER) FROM Orders")
        err = exc_info.value
        assert err.line == 1 and err.column == 8
        assert "line 1, column 8" in str(err)

    def test_multiline_sql_reports_the_right_line(self, paper_db):
        with pytest.raises(ExecutionError) as exc_info:
            paper_db.execute(
                "SELECT\n  CAST(prodName AS DATE)\nFROM Orders"
            )
        assert exc_info.value.line == 2

    def test_function_type_error_becomes_execution_error(self, paper_db):
        # A parameter's type is unknown at bind time; abs('x') raises a bare
        # TypeError at runtime, which must surface as a located
        # ExecutionError, not a Python traceback.
        with pytest.raises(ExecutionError) as exc_info:
            paper_db.execute("SELECT ABS(?) FROM Orders", params=("x",))
        err = exc_info.value
        assert err.line > 0 and "ABS" in str(err)

    def test_function_value_error_becomes_execution_error(self, paper_db):
        # Same for ValueError (int conversion of a malformed string).
        with pytest.raises(ExecutionError) as exc_info:
            paper_db.execute("SELECT SUBSTRING(prodName, 'x') FROM Orders")
        err = exc_info.value
        assert err.line > 0 and "SUBSTRING" in str(err)

    def test_division_by_zero_span(self, paper_db):
        with pytest.raises(ExecutionError) as exc_info:
            paper_db.execute("SELECT revenue / 0 FROM Orders")
        err = exc_info.value
        assert err.line == 1 and err.column > 0

    def test_innermost_span_wins(self, paper_db):
        # The failing cast is nested inside an addition; the error should
        # point at the cast, not the outer call.
        with pytest.raises(ExecutionError) as exc_info:
            paper_db.execute("SELECT 1 + CAST(prodName AS INTEGER) FROM Orders")
        assert exc_info.value.column == 12

    def test_formula_evaluation_carries_span(self, orders_db):
        orders_db.execute(
            "CREATE VIEW Bad AS SELECT prodName, "
            "SUM(CAST(prodName AS INTEGER)) AS MEASURE m FROM Orders"
        )
        with pytest.raises(ExecutionError) as exc_info:
            orders_db.execute("SELECT AGGREGATE(m) FROM Bad")
        assert exc_info.value.line > 0

    def test_unhashable_correlated_subquery_still_executes(self, db):
        # The subquery result cache silently skips unhashable keys; the
        # query must still produce correct rows.
        db.execute("CREATE TABLE t (v INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        rows = db.execute(
            "SELECT (SELECT COUNT(*) FROM t AS i WHERE i.v <= o.v) FROM t AS o"
        ).rows
        assert sorted(rows) == [(1,), (2,)]


# ---------------------------------------------------------------------------
# Property: static inference agrees with runtime values
# ---------------------------------------------------------------------------


import datetime

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SqlError

STRATEGIES = ("subquery", "inline", "window", "auto")


def _value_matches(value, dtype) -> bool:
    """Does a runtime value inhabit the statically inferred type?"""
    if value is None:
        return True
    name = str(dtype.unwrap())
    if name == "INTEGER":
        return isinstance(value, int) and not isinstance(value, bool)
    if name == "DOUBLE":
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if name == "BOOLEAN":
        return isinstance(value, bool)
    if name == "VARCHAR":
        return isinstance(value, str)
    if name == "DATE":
        return isinstance(value, (datetime.date, str))
    return True  # UNKNOWN and friends constrain nothing


@pytest.fixture(scope="module")
def listings_db() -> Database:
    db = Database()
    load_paper_tables(db)
    for ddl in SETUP.values():
        db.execute(ddl)
    return db


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name", sorted(LISTINGS))
def test_inference_agrees_with_runtime(listings_db, name, strategy):
    """Every paper listing, under every measure-expansion strategy: each
    output column's runtime values inhabit the inferred type, and columns
    inferred non-nullable never produce NULL."""
    sql = LISTINGS[name]
    try:
        expanded = listings_db.expand(sql, strategy=strategy)
    except SqlError as exc:
        pytest.skip(f"{strategy} expansion unsupported for {name}: {exc}")
    planned = listings_db.plan_query(parse_query(expanded), sql=expanded)
    facts = planned.plan.facts
    assert facts is not None
    rows = listings_db.execute(expanded).rows
    assert len(facts.columns) == len(planned.columns)
    for offset, column in enumerate(facts.columns):
        for row in rows:
            assert _value_matches(row[offset], column.dtype), (
                name, strategy, column.name, row[offset]
            )
            if not column.nullable:
                assert row[offset] is not None, (name, strategy, column.name)
    if facts.row_max is not None:
        assert len(rows) <= facts.row_max
    assert len(rows) >= facts.row_min or facts.row_min == 0


@settings(max_examples=50, deadline=None)
@given(
    exprs=st.lists(
        st.sampled_from(
            [
                "revenue",
                "revenue + cost",
                "revenue > 20",
                "prodName",
                "COALESCE(revenue, 0)",
                "CASE WHEN revenue > 20 THEN 'hi' ELSE 'lo' END",
                "revenue IS NULL",
                "-cost",
                "NULLIF(prodName, 'Happy')",
            ]
        ),
        min_size=1,
        max_size=4,
    ),
    agg=st.booleans(),
)
def test_inference_agrees_on_generated_queries(exprs, agg):
    db = Database()
    load_paper_tables(db)
    if agg:
        sql = (
            "SELECT prodName, SUM(revenue) AS s, COUNT(*) AS n "
            "FROM Orders GROUP BY prodName"
        )
    else:
        sql = f"SELECT {', '.join(exprs)} FROM Orders"
    facts, _ = facts_of(db, sql)
    rows = db.execute(sql).rows
    for offset, column in enumerate(facts.columns):
        for row in rows:
            assert _value_matches(row[offset], column.dtype)
            if not column.nullable:
                assert row[offset] is not None
