"""The workload flight recorder: journal format, recording, and replay.

Covers the tentpole's determinism contract — record through any entry
point (Database API, server session, prepared statements), replay
against a fresh database, and require byte-identical results — plus the
edge cases the journal must preserve faithfully: typed bind parameters,
errored statements (replayed *as* errors), cancelled statements
(skipped), and the expansion-strategy routing.
"""

from __future__ import annotations

import json
from datetime import date, datetime
from decimal import Decimal

import pytest

from repro.api import Database
from repro.errors import QueryCancelled, SqlError
from repro.history import (
    JOURNAL_SCHEMA,
    JournalWriter,
    build_bootstrap_database,
    read_journal,
    replay_journal,
    result_digest,
)
from repro.history.__main__ import main as history_main
from repro.history.journal import decode_params, encode_params
from repro.server import ServerThread, SessionManager, connect


def journal_path(tmp_path) -> str:
    return str(tmp_path / "journal.jsonl")


# -- the journal file itself --------------------------------------------------


class TestJournalFormat:
    def test_header_carries_schema_and_bootstrap(self, tmp_path):
        path = journal_path(tmp_path)
        JournalWriter(path, bootstrap="paper").close()
        header, entries = read_journal(path)
        assert header["schema"] == JOURNAL_SCHEMA
        assert header["bootstrap"] == "paper"
        assert entries == []

    def test_foreign_schema_rejected(self, tmp_path):
        path = journal_path(tmp_path)
        with open(path, "w") as handle:
            handle.write(json.dumps({"schema": "something-else"}) + "\n")
        with pytest.raises(ValueError):
            read_journal(path)

    def test_empty_file_rejected(self, tmp_path):
        path = journal_path(tmp_path)
        open(path, "w").close()
        with pytest.raises(ValueError):
            read_journal(path)

    def test_entries_get_monotonic_seqs(self, tmp_path):
        path = journal_path(tmp_path)
        with JournalWriter(path) as writer:
            for i in range(5):
                writer.record(sql=f"SELECT {i}")
        _, entries = read_journal(path)
        assert [e.seq for e in entries] == [1, 2, 3, 4, 5]

    def test_typed_params_round_trip(self):
        params = (
            1,
            "text",
            None,
            2.5,
            date(2024, 3, 1),
            datetime(2024, 3, 1, 12, 30, 45),
            Decimal("3.50"),
        )
        encoded = encode_params(params)
        # The encoding must be plain JSON (the journal is JSON lines).
        json.dumps(encoded)
        assert decode_params(encoded) == params
        assert isinstance(decode_params(encoded)[-1], Decimal)

    def test_outcomes_ok_error_cancelled(self, tmp_path):
        path = journal_path(tmp_path)
        with JournalWriter(path) as writer:
            writer.record(sql="SELECT 1")
            writer.record(sql="SELECT broken", error=SqlError("no"))
            writer.record(sql="SELECT slow", error=QueryCancelled("stop"))
        _, entries = read_journal(path)
        assert [e.outcome for e in entries] == ["ok", "error", "cancelled"]
        assert entries[1].error["class"] == "SqlError"


# -- recording through the Database API --------------------------------------


class TestDatabaseRecording:
    def test_record_to_journals_ddl_dml_and_queries(self, tmp_path):
        path = journal_path(tmp_path)
        db = Database(record_to=path)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (?), (?)", (1, 2))
        db.execute("SELECT x FROM t ORDER BY x")
        db.recorder.close()
        _, entries = read_journal(path)
        assert [e.kind for e in entries] == [
            "create_table",
            "insert",
            "select",
        ]
        assert entries[1].params == (1, 2)
        assert entries[2].digest is not None

    def test_recording_identical_with_telemetry_on_and_off(self, tmp_path):
        def run(telemetry: bool, name: str) -> list:
            path = str(tmp_path / name)
            db = Database(telemetry=telemetry, record_to=path)
            db.execute("CREATE TABLE t (x INTEGER)")
            db.execute("INSERT INTO t VALUES (1), (2), (3)")
            db.execute("SELECT SUM(x) FROM t")
            db.recorder.close()
            _, entries = read_journal(path)
            return [(e.sql, e.outcome, e.digest) for e in entries]

        assert run(False, "off.jsonl") == run(True, "on.jsonl")

    def test_errors_recorded_and_replayed_as_errors(self, tmp_path):
        path = journal_path(tmp_path)
        db = Database(record_to=path)
        db.execute("CREATE TABLE t (x INTEGER)")
        with pytest.raises(SqlError):
            db.execute("SELECT nope FROM t")
        with pytest.raises(SqlError):
            db.execute("INSERT INTO missing VALUES (1)")
        db.recorder.close()
        _, entries = read_journal(path)
        assert [e.outcome for e in entries] == ["ok", "error", "error"]
        report = replay_journal(path, diff=True)
        assert report.clean
        assert report.errors_reproduced == 2

    def test_replay_diverges_when_error_becomes_success(self, tmp_path):
        """A statement recorded as an error but succeeding on replay is a
        divergence, not a silent pass."""
        path = journal_path(tmp_path)
        db = Database(record_to=path)
        with pytest.raises(SqlError):
            db.execute("SELECT * FROM t")  # t does not exist yet
        db.recorder.close()
        # Rewrite the journal so replay sees a CREATE first: the SELECT
        # then succeeds where the recording failed.
        with open(path) as handle:
            lines = handle.read().splitlines()
        entry = json.loads(lines[1])
        fixed = dict(entry, sql="CREATE TABLE t (x INTEGER)", seq=1)
        fixed["outcome"] = "ok"
        fixed["error"] = None
        lines.insert(1, json.dumps(fixed, sort_keys=True))
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        report = replay_journal(path, diff=True)
        assert not report.clean
        assert any("outcome" in d.reason for d in report.divergences)

    def test_cancelled_entries_are_skipped_on_replay(self, tmp_path):
        path = journal_path(tmp_path)
        with JournalWriter(path) as writer:
            writer.record(sql="SELECT 1", error=QueryCancelled("client"))
            writer.record(sql="SELECT 2")
        report = replay_journal(path, diff=True)
        assert report.clean
        assert report.skipped_cancelled == 1
        assert report.replayed == 1


# -- recording through the server/session layer ------------------------------


class TestServerRecording:
    def test_session_statements_and_prepared_params_journal(self, tmp_path):
        path = journal_path(tmp_path)
        db = Database(telemetry=True, record_to=path)
        manager = SessionManager(db)
        session = manager.open_session()
        session.execute("CREATE TABLE t (x INTEGER)")
        session.execute("INSERT INTO t VALUES (?), (?), (?)", (1, 2, 3))
        handle = session.prepare("SELECT x FROM t WHERE x > ? ORDER BY x")
        session.execute_prepared(handle, (1,))
        session.execute_prepared(handle, (2,))
        session.close()
        db.recorder.close()
        _, entries = read_journal(path)
        selects = [e for e in entries if e.kind == "select"]
        assert [e.params for e in selects] == [(1,), (2,)]
        assert all(e.session == session.id for e in entries)
        report = replay_journal(path, diff=True)
        assert report.clean
        assert report.replayed == 4

    def test_parse_errors_journal_and_reproduce(self, tmp_path):
        path = journal_path(tmp_path)
        db = Database(telemetry=True, record_to=path)
        manager = SessionManager(db)
        session = manager.open_session()
        with pytest.raises(SqlError):
            session.execute("SELEC nope")
        session.close()
        db.recorder.close()
        _, entries = read_journal(path)
        assert entries[0].outcome == "error"
        report = replay_journal(path, diff=True)
        assert report.clean and report.errors_reproduced == 1

    def test_tcp_roundtrip_records_traceparent_and_replays(self, tmp_path):
        path = journal_path(tmp_path)
        db = Database(telemetry=True, record_to=path)
        trace = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
        with ServerThread(db) as server:
            host, port = server.server.host, server.server.port
            with connect(host, port) as conn:
                conn.query("CREATE TABLE t (x INTEGER)")
                conn.query("INSERT INTO t VALUES (1), (2)")
                conn.query("SELECT SUM(x) FROM t", traceparent=trace)
        db.recorder.close()
        _, entries = read_journal(path)
        assert entries[-1].traceparent == trace
        assert replay_journal(path, diff=True).clean


# -- expansion strategies -----------------------------------------------------


class TestStrategyReplay:
    #: Every expansion strategy listing12_q4 supports (inline requires a
    #: plain aggregate shape — covered separately on listing 4).
    STRATEGIES = ("subquery", "window", "winmagic", "auto")

    def test_paper_listing_replays_under_every_strategy(self, tmp_path):
        from repro.workloads.listings import LISTINGS

        path = journal_path(tmp_path)
        db = build_bootstrap_database("paper")
        db.recorder = JournalWriter(path, bootstrap="paper")
        sql = LISTINGS["listing12_q4"]
        rows = None
        for strategy in self.STRATEGIES:
            result = db.execute_with_strategy(sql, strategy=strategy)
            if rows is None:
                rows = result.rows
            assert result.rows == rows  # strategies agree before replay
        db.recorder.close()
        _, entries = read_journal(path)
        assert [e.strategy for e in entries] == list(self.STRATEGIES)
        report = replay_journal(path, diff=True)
        assert report.clean
        assert report.replayed == len(self.STRATEGIES)

    def test_inline_strategy_records_and_replays(self, tmp_path):
        from repro.workloads.listings import LISTINGS

        path = journal_path(tmp_path)
        db = build_bootstrap_database("listings")
        db.recorder = JournalWriter(path, bootstrap="listings")
        sql = LISTINGS["listing4"]
        inline = db.execute_with_strategy(sql, strategy="inline")
        subquery = db.execute_with_strategy(sql, strategy="subquery")
        assert inline.rows == subquery.rows
        db.recorder.close()
        _, entries = read_journal(path)
        assert [e.strategy for e in entries] == ["inline", "subquery"]
        assert replay_journal(path, diff=True).clean

    def test_unsupported_strategy_records_the_error(self, tmp_path):
        """A strategy that rejects the query (inline on a non-aggregate
        listing) journals the failure and replays it as the same error."""
        from repro.workloads.listings import LISTINGS

        path = journal_path(tmp_path)
        db = build_bootstrap_database("paper")
        db.recorder = JournalWriter(path, bootstrap="paper")
        with pytest.raises(SqlError):
            db.execute_with_strategy(
                LISTINGS["listing12_q4"], strategy="inline"
            )
        db.recorder.close()
        report = replay_journal(path, diff=True)
        assert report.clean and report.errors_reproduced == 1

    def test_strategy_stats_accumulate_distinct_rows(self, tmp_path):
        """One listing under four strategies -> four repro_strategy_stats
        rows for one fingerprint, each with its own timing history."""
        from repro.workloads.listings import LISTINGS

        db = build_bootstrap_database("paper", telemetry=True)
        sql = LISTINGS["listing12_q4"]
        for strategy in self.STRATEGIES:
            db.execute_with_strategy(sql, strategy=strategy)
            db.execute_with_strategy(sql, strategy=strategy)
        rows = db.execute(
            "SELECT strategy, calls FROM repro_strategy_stats "
            "ORDER BY strategy"
        ).rows
        by_strategy = {s: c for s, c in rows}
        for strategy in self.STRATEGIES:
            assert by_strategy[strategy] == 2
        stats = db.strategy_stats()
        fingerprints = {e["fingerprint"] for e in stats if e["strategy"] in self.STRATEGIES}
        assert len(fingerprints) == 1  # same statement, four strategies
        for entry in stats:
            if entry["strategy"] in self.STRATEGIES:
                assert entry["total_wall_ms"] > 0.0
                assert entry["min_wall_ms"] <= entry["mean_wall_ms"] <= entry["max_wall_ms"]

    def test_strategy_errors_replay_as_errors(self, tmp_path):
        path = journal_path(tmp_path)
        db = build_bootstrap_database("paper")
        db.recorder = JournalWriter(path, bootstrap="paper")
        with pytest.raises(SqlError):
            db.execute_with_strategy(
                "SELECT missing FROM Orders", strategy="window"
            )
        db.recorder.close()
        report = replay_journal(path, diff=True)
        assert report.clean and report.errors_reproduced == 1


# -- bootstraps and the CLI ---------------------------------------------------


class TestReplayCli:
    def test_bootstrap_modes(self):
        assert build_bootstrap_database(None).table_names() == []
        paper = build_bootstrap_database("paper")
        assert "orders" in [n.lower() for n in paper.table_names()]
        listings = build_bootstrap_database("listings")
        names = [n.lower() for n in listings.table_names()]
        assert "enhancedorders" in names
        with pytest.raises(ValueError):
            build_bootstrap_database("wat")

    def test_clean_journal_exits_zero(self, tmp_path, capsys):
        path = journal_path(tmp_path)
        db = Database(record_to=path)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("SELECT * FROM t")
        db.recorder.close()
        assert history_main(["replay", path, "--diff"]) == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_injected_mismatch_exits_nonzero(self, tmp_path, capsys):
        path = journal_path(tmp_path)
        db = Database(record_to=path)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        db.execute("SELECT * FROM t")
        db.recorder.close()
        with open(path) as handle:
            lines = handle.read().splitlines()
        entry = json.loads(lines[-1])
        entry["digest"] = "0" * 64
        lines[-1] = json.dumps(entry, sort_keys=True)
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        assert history_main(["replay", path, "--diff"]) == 1
        assert "result bytes changed" in capsys.readouterr().out

    def test_unreadable_journal_exits_two(self, tmp_path):
        assert history_main(["replay", str(tmp_path / "nope.jsonl")]) == 2

    def test_show_prints_entries(self, tmp_path, capsys):
        path = journal_path(tmp_path)
        db = Database(record_to=path)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.recorder.close()
        assert history_main(["show", path]) == 0
        out = capsys.readouterr().out
        assert "CREATE TABLE" in out and JOURNAL_SCHEMA in out

    def test_result_digest_is_order_sensitive(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        asc = result_digest(db.execute("SELECT x FROM t ORDER BY x"))
        desc = result_digest(db.execute("SELECT x FROM t ORDER BY x DESC"))
        assert asc != desc
        again = result_digest(db.execute("SELECT x FROM t ORDER BY x"))
        assert asc == again
