"""Core SELECT execution: projections, WHERE, expressions, NULL handling."""

from __future__ import annotations

import datetime

import pytest

from repro import BindError, Database, ExecutionError


@pytest.fixture
def t(db: Database) -> Database:
    db.execute("CREATE TABLE t (a INTEGER, b VARCHAR, c DOUBLE, d DATE)")
    db.execute(
        """INSERT INTO t VALUES
           (1, 'x', 1.5, DATE '2024-01-01'),
           (2, 'y', 2.5, DATE '2024-06-15'),
           (3, NULL, NULL, NULL),
           (NULL, 'z', 0.5, DATE '2023-12-31')"""
    )
    return db


def test_select_constant_without_from(db):
    assert db.execute("SELECT 1 + 1").scalar() == 2


def test_select_star(t):
    result = t.execute("SELECT * FROM t")
    assert len(result.rows) == 4
    assert result.column_names == ["a", "b", "c", "d"]


def test_select_qualified_star(t):
    result = t.execute("SELECT z.* FROM t AS z")
    assert len(result.rows) == 4


def test_projection_expression(t):
    rows = t.execute("SELECT a * 10 + 1 FROM t WHERE a = 2").rows
    assert rows == [(21,)]


def test_where_filters(t):
    assert len(t.execute("SELECT a FROM t WHERE a > 1").rows) == 2


def test_where_null_is_not_true(t):
    # a > 1 is NULL for the NULL row: not returned.
    values = t.execute("SELECT a FROM t WHERE a > 0").column("a")
    assert None not in values


def test_is_null_predicate(t):
    assert t.execute("SELECT COUNT(*) FROM t WHERE b IS NULL").scalar() == 1
    assert t.execute("SELECT COUNT(*) FROM t WHERE b IS NOT NULL").scalar() == 3


def test_is_not_distinct_from_matches_nulls(t):
    count = t.execute(
        "SELECT COUNT(*) FROM t WHERE b IS NOT DISTINCT FROM NULL"
    ).scalar()
    assert count == 1


def test_in_list(t):
    assert t.execute("SELECT COUNT(*) FROM t WHERE a IN (1, 3)").scalar() == 2


def test_not_in_with_null_operand_filters_row(t):
    # NULL NOT IN (...) is NULL -> row filtered.
    assert t.execute("SELECT COUNT(*) FROM t WHERE a NOT IN (99)").scalar() == 3


def test_between(t):
    assert t.execute("SELECT COUNT(*) FROM t WHERE a BETWEEN 2 AND 3").scalar() == 2


def test_like(t):
    t.execute("INSERT INTO t VALUES (9, 'xylophone', 0.0, NULL)")
    assert t.execute("SELECT COUNT(*) FROM t WHERE b LIKE 'x%'").scalar() == 2
    assert t.execute("SELECT COUNT(*) FROM t WHERE b LIKE '_ylophone'").scalar() == 1


def test_like_escape(db):
    db.execute("CREATE TABLE s (v VARCHAR)")
    db.execute("INSERT INTO s VALUES ('50%'), ('50x')")
    assert db.execute("SELECT COUNT(*) FROM s WHERE v LIKE '50!%' ESCAPE '!'").scalar() == 1


def test_case_searched(t):
    rows = t.execute(
        """SELECT a, CASE WHEN a >= 2 THEN 'big' WHEN a = 1 THEN 'small' END
           FROM t WHERE a IS NOT NULL ORDER BY a"""
    ).rows
    assert rows == [(1, "small"), (2, "big"), (3, "big")]


def test_case_simple_with_else(t):
    rows = t.execute(
        "SELECT CASE a WHEN 1 THEN 'one' ELSE 'other' END FROM t WHERE a = 1"
    ).rows
    assert rows == [("one",)]


def test_case_no_match_yields_null(t):
    assert t.execute("SELECT CASE WHEN FALSE THEN 1 END").scalar() is None


def test_cast_runtime(t):
    assert t.execute("SELECT CAST('42' AS INTEGER)").scalar() == 42
    assert t.execute("SELECT CAST(1 AS DOUBLE)").scalar() == 1.0
    assert t.execute("SELECT CAST('2024-03-01' AS DATE)").scalar() == datetime.date(2024, 3, 1)
    assert t.execute("SELECT CAST(1.9 AS INTEGER)").scalar() == 1


def test_cast_failure_raises(t):
    with pytest.raises(ExecutionError):
        t.execute("SELECT CAST('nope' AS INTEGER)")


def test_integer_division_yields_double(t):
    assert t.execute("SELECT 1 / 2").scalar() == 0.5


def test_division_by_zero_raises(t):
    with pytest.raises(ExecutionError):
        t.execute("SELECT 1 / 0")


def test_division_by_zero_in_unreached_case_branch_ok(t):
    assert t.execute("SELECT CASE WHEN TRUE THEN 1 ELSE 1 / 0 END").scalar() == 1


def test_and_short_circuit_avoids_error(t):
    # x <> 0 AND 1/x ... : rows with x = 0 must not evaluate the division.
    t.execute("CREATE TABLE z (x INTEGER)")
    t.execute("INSERT INTO z VALUES (0), (2)")
    rows = t.execute("SELECT x FROM z WHERE x <> 0 AND 10 / x > 1").rows
    assert rows == [(2,)]


def test_or_short_circuit(t):
    t.execute("CREATE TABLE z2 (x INTEGER)")
    t.execute("INSERT INTO z2 VALUES (0), (2)")
    rows = t.execute("SELECT x FROM z2 WHERE x = 0 OR 10 / x > 1 ORDER BY x").rows
    assert rows == [(0,), (2,)]


def test_concat_operator(t):
    assert t.execute("SELECT 'a' || 'b' || 'c'").scalar() == "abc"
    assert t.execute("SELECT 'a' || NULL").scalar() is None


def test_date_arithmetic(t):
    assert t.execute("SELECT DATE '2024-01-01' + 31").scalar() == datetime.date(2024, 2, 1)
    assert t.execute("SELECT DATE '2024-02-01' - DATE '2024-01-01'").scalar() == 31


def test_unknown_column_raises(t):
    with pytest.raises(BindError):
        t.execute("SELECT nosuch FROM t")


def test_unknown_table_raises(db):
    from repro import CatalogError

    with pytest.raises(CatalogError):
        db.execute("SELECT 1 FROM nothere")


def test_ambiguous_column_raises(db):
    db.execute("CREATE TABLE p (k INTEGER)")
    db.execute("CREATE TABLE q (k INTEGER)")
    with pytest.raises(BindError):
        db.execute("SELECT k FROM p, q")


def test_alias_shadows_in_qualified_ref(t):
    rows = t.execute("SELECT z.a FROM t AS z WHERE z.a = 1").rows
    assert rows == [(1,)]


def test_original_name_unavailable_after_alias(t):
    with pytest.raises(BindError):
        t.execute("SELECT t.a FROM t AS z")


def test_column_names_case_insensitive(t):
    assert t.execute("SELECT A FROM t WHERE a = 1").rows == [(1,)]


def test_duplicate_alias_raises(db):
    db.execute("CREATE TABLE p (k INTEGER)")
    with pytest.raises(BindError):
        db.execute("SELECT 1 FROM p AS x, p AS x")


def test_select_item_names(t):
    result = t.execute("SELECT a, a + 1 AS next, UPPER(b) FROM t WHERE a = 1")
    assert result.column_names == ["a", "next", "upper"]
