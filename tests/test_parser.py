"""Parser unit tests: statement shapes, expression precedence, measure syntax."""

from __future__ import annotations

import datetime

import pytest

from repro.errors import ParseError
from repro.sql import ast, parse_expression, parse_query, parse_statement, parse_statements


# -- expressions --------------------------------------------------------------


def test_precedence_multiplication_binds_tighter():
    expr = parse_expression("1 + 2 * 3")
    assert isinstance(expr, ast.Binary) and expr.op == "+"
    assert isinstance(expr.right, ast.Binary) and expr.right.op == "*"


def test_precedence_parentheses_override():
    expr = parse_expression("(1 + 2) * 3")
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_precedence_and_binds_tighter_than_or():
    expr = parse_expression("a OR b AND c")
    assert expr.op == "OR"
    assert expr.right.op == "AND"


def test_precedence_not_above_comparison():
    expr = parse_expression("NOT a = b")
    assert isinstance(expr, ast.Unary) and expr.op == "NOT"
    assert isinstance(expr.operand, ast.Binary) and expr.operand.op == "="


def test_precedence_comparison_below_additive():
    expr = parse_expression("a + 1 < b - 2")
    assert expr.op == "<"
    assert expr.left.op == "+"
    assert expr.right.op == "-"


def test_at_binds_tighter_than_division():
    expr = parse_expression("x / x AT (ALL a)")
    assert isinstance(expr, ast.Binary) and expr.op == "/"
    assert isinstance(expr.right, ast.At)


def test_unary_minus():
    expr = parse_expression("-x + 1")
    assert expr.op == "+"
    assert isinstance(expr.left, ast.Unary)


def test_not_equal_normalized():
    assert parse_expression("a != b").op == "<>"


def test_concat_operator():
    assert parse_expression("a || b").op == "||"


def test_between():
    expr = parse_expression("x BETWEEN 1 AND 10")
    assert isinstance(expr, ast.Between)
    assert not expr.negated


def test_not_between():
    assert parse_expression("x NOT BETWEEN 1 AND 10").negated


def test_in_list():
    expr = parse_expression("x IN (1, 2, 3)")
    assert isinstance(expr, ast.InList)
    assert len(expr.items) == 3


def test_not_in_subquery():
    expr = parse_expression("x NOT IN (SELECT y FROM t)")
    assert isinstance(expr, ast.InSubquery)
    assert expr.negated


def test_like_with_escape():
    expr = parse_expression("x LIKE 'a!%%' ESCAPE '!'")
    assert isinstance(expr, ast.Like)
    assert expr.escape is not None


def test_is_null_and_is_not_null():
    assert not parse_expression("x IS NULL").negated
    assert parse_expression("x IS NOT NULL").negated


def test_is_not_distinct_from():
    expr = parse_expression("x IS NOT DISTINCT FROM y")
    assert isinstance(expr, ast.IsDistinctFrom)
    assert expr.negated


def test_searched_case():
    expr = parse_expression("CASE WHEN a THEN 1 WHEN b THEN 2 ELSE 3 END")
    assert isinstance(expr, ast.Case)
    assert expr.operand is None
    assert len(expr.whens) == 2
    assert expr.else_result is not None


def test_simple_case():
    expr = parse_expression("CASE x WHEN 1 THEN 'one' END")
    assert expr.operand is not None
    assert expr.else_result is None


def test_case_requires_when():
    with pytest.raises(ParseError):
        parse_expression("CASE ELSE 1 END")


def test_cast():
    expr = parse_expression("CAST(x AS DOUBLE)")
    assert isinstance(expr, ast.Cast)
    assert expr.type_name == "DOUBLE"
    assert not expr.is_measure_type


def test_cast_to_measure_type():
    assert parse_expression("CAST(x AS INTEGER MEASURE)").is_measure_type


def test_extract_becomes_function():
    expr = parse_expression("EXTRACT(YEAR FROM d)")
    assert isinstance(expr, ast.FunctionCall)
    assert expr.name == "YEAR"


def test_date_literal():
    expr = parse_expression("DATE '2023-11-28'")
    assert expr.value == datetime.date(2023, 11, 28)


def test_date_literal_with_slashes():
    assert parse_expression("DATE '2023/11/28'").value == datetime.date(2023, 11, 28)


def test_invalid_date_literal_raises():
    with pytest.raises(ParseError):
        parse_expression("DATE '2023-13-99'")


def test_boolean_and_null_literals():
    assert parse_expression("TRUE").value is True
    assert parse_expression("FALSE").value is False
    assert parse_expression("NULL").value is None


def test_qualified_column_ref():
    expr = parse_expression("o.prodName")
    assert expr.parts == ("o", "prodName")
    assert expr.qualifier == "o"
    assert expr.name == "prodName"


def test_count_star():
    expr = parse_expression("COUNT(*)")
    assert expr.star_arg


def test_distinct_aggregate():
    assert parse_expression("COUNT(DISTINCT x)").distinct


def test_aggregate_filter_clause():
    expr = parse_expression("SUM(x) FILTER (WHERE x > 0)")
    assert expr.filter_where is not None


def test_window_function_full_spec():
    expr = parse_expression(
        "SUM(x) OVER (PARTITION BY a, b ORDER BY c DESC "
        "ROWS BETWEEN 2 PRECEDING AND CURRENT ROW)"
    )
    spec = expr.over
    assert len(spec.partition_by) == 2
    assert spec.order_by[0].descending
    assert spec.frame.unit == "ROWS"
    assert spec.frame.start.kind == "PRECEDING"
    assert spec.frame.end.kind == "CURRENT_ROW"


def test_window_shorthand_frame():
    expr = parse_expression("SUM(x) OVER (ORDER BY c ROWS UNBOUNDED PRECEDING)")
    assert expr.over.frame.start.kind == "UNBOUNDED_PRECEDING"
    assert expr.over.frame.end.kind == "CURRENT_ROW"


def test_scalar_subquery_in_expression():
    expr = parse_expression("(SELECT MAX(x) FROM t)")
    assert isinstance(expr, ast.ScalarSubquery)


def test_double_paren_subquery_arithmetic():
    expr = parse_expression("((SELECT a FROM t) / (SELECT b FROM u))")
    assert isinstance(expr, ast.Binary) and expr.op == "/"
    assert isinstance(expr.left, ast.ScalarSubquery)


def test_exists():
    assert isinstance(parse_expression("EXISTS (SELECT 1 FROM t)"), ast.Exists)


# -- measure syntax ----------------------------------------------------------


def test_as_measure_select_item():
    stmt = parse_query("SELECT SUM(x) AS MEASURE total FROM t")
    item = stmt.items[0]
    assert item.is_measure
    assert item.alias == "total"


def test_plain_as_alias_is_not_measure():
    assert not parse_query("SELECT SUM(x) AS total FROM t").items[0].is_measure


def test_at_all_bare():
    expr = parse_expression("m AT (ALL)")
    assert isinstance(expr, ast.At)
    assert isinstance(expr.modifiers[0], ast.AllModifier)
    assert expr.modifiers[0].dims == []


def test_at_all_with_dims():
    expr = parse_expression("m AT (ALL a, b)")
    assert len(expr.modifiers[0].dims) == 2


def test_at_set_with_current():
    expr = parse_expression("m AT (SET y = CURRENT y - 1)")
    modifier = expr.modifiers[0]
    assert isinstance(modifier, ast.SetModifier)
    value = modifier.value
    assert isinstance(value, ast.Binary)
    assert isinstance(value.left, ast.CurrentDim)


def test_at_multiple_modifiers_space_separated():
    expr = parse_expression("m AT (ALL a SET b = 1 VISIBLE WHERE c > 2)")
    types = [type(m).__name__ for m in expr.modifiers]
    assert types == ["AllModifier", "SetModifier", "VisibleModifier", "WhereModifier"]


def test_at_chained():
    expr = parse_expression("m AT (ALL) AT (VISIBLE)")
    assert isinstance(expr, ast.At)
    assert isinstance(expr.operand, ast.At)


def test_at_set_adhoc_dimension():
    expr = parse_expression("m AT (SET YEAR(d) = 2023)")
    assert isinstance(expr.modifiers[0].dim, ast.FunctionCall)


def test_at_requires_modifier():
    with pytest.raises(ParseError):
        parse_expression("m AT ()")


def test_aggregate_call_parses_as_function():
    expr = parse_expression("AGGREGATE(profitMargin)")
    assert isinstance(expr, ast.FunctionCall)
    assert expr.name == "AGGREGATE"


# -- statements ----------------------------------------------------------------


def test_create_table():
    stmt = parse_statement("CREATE TABLE t (a INTEGER, b VARCHAR, c DATE)")
    assert isinstance(stmt, ast.CreateTable)
    assert [c.name for c in stmt.columns] == ["a", "b", "c"]
    assert stmt.columns[2].type_name == "DATE"


def test_create_table_with_precision():
    stmt = parse_statement("CREATE TABLE t (a VARCHAR(30), b DECIMAL(10, 2))")
    assert stmt.columns[0].type_name == "VARCHAR"


def test_create_or_replace_view_with_columns():
    stmt = parse_statement("CREATE OR REPLACE VIEW v (x, y) AS SELECT a, b FROM t")
    assert isinstance(stmt, ast.CreateView)
    assert stmt.or_replace
    assert stmt.column_names == ["x", "y"]


def test_drop_table_if_exists():
    stmt = parse_statement("DROP TABLE IF EXISTS t")
    assert stmt.kind == "TABLE"
    assert stmt.if_exists


def test_insert_values():
    stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
    assert isinstance(stmt, ast.Insert)
    assert stmt.columns == ["a", "b"]
    assert len(stmt.source.rows) == 2


def test_insert_from_select():
    stmt = parse_statement("INSERT INTO t SELECT * FROM u")
    assert isinstance(stmt.source, ast.Select)


def test_explain_expand():
    stmt = parse_statement("EXPLAIN EXPAND SELECT AGGREGATE(m) FROM v GROUP BY a")
    assert isinstance(stmt, ast.ExplainExpand)


def test_multiple_statements():
    stmts = parse_statements("SELECT 1; SELECT 2;; SELECT 3")
    assert len(stmts) == 3


# -- query clauses -----------------------------------------------------------


def test_select_distinct():
    assert parse_query("SELECT DISTINCT a FROM t").distinct


def test_group_by_rollup():
    query = parse_query("SELECT a, COUNT(*) FROM t GROUP BY ROLLUP(a, b)")
    assert isinstance(query.group_by[0], ast.Rollup)
    assert len(query.group_by[0].exprs) == 2


def test_group_by_cube():
    query = parse_query("SELECT 1 FROM t GROUP BY CUBE(a, b)")
    assert isinstance(query.group_by[0], ast.Cube)


def test_group_by_grouping_sets_with_empty_set():
    query = parse_query("SELECT 1 FROM t GROUP BY GROUPING SETS ((a, b), (a), ())")
    sets = query.group_by[0].sets
    assert [len(s) for s in sets] == [2, 1, 0]


def test_group_by_mixed_elements():
    query = parse_query("SELECT 1 FROM t GROUP BY a, ROLLUP(b)")
    assert isinstance(query.group_by[0], ast.SimpleGrouping)
    assert isinstance(query.group_by[1], ast.Rollup)


def test_order_by_directions_and_nulls():
    query = parse_query("SELECT a FROM t ORDER BY a DESC NULLS FIRST, b ASC NULLS LAST")
    assert query.order_by[0].descending
    assert query.order_by[0].nulls_first is True
    assert query.order_by[1].nulls_first is False


def test_limit_offset():
    query = parse_query("SELECT a FROM t LIMIT 10 OFFSET 5")
    assert query.limit.value == 10
    assert query.offset.value == 5


def test_joins_chain_left_associative():
    query = parse_query("SELECT 1 FROM a JOIN b ON x = y LEFT JOIN c USING (k)")
    outer = query.from_clause
    assert isinstance(outer, ast.Join)
    assert outer.kind == "LEFT"
    assert outer.using == ["k"]
    assert isinstance(outer.left, ast.Join)


def test_cross_join_and_comma_join_equivalence():
    explicit = parse_query("SELECT 1 FROM a CROSS JOIN b").from_clause
    comma = parse_query("SELECT 1 FROM a, b").from_clause
    assert explicit.kind == comma.kind == "CROSS"


def test_natural_join():
    assert parse_query("SELECT 1 FROM a NATURAL JOIN b").from_clause.natural


def test_join_requires_condition():
    with pytest.raises(ParseError):
        parse_query("SELECT 1 FROM a JOIN b")


def test_subquery_in_from_with_alias():
    query = parse_query("SELECT x FROM (SELECT a AS x FROM t) AS sub")
    assert isinstance(query.from_clause, ast.SubqueryRef)
    assert query.from_clause.alias == "sub"


def test_with_cte():
    query = parse_query("WITH c (x) AS (SELECT a FROM t) SELECT x FROM c")
    assert isinstance(query, ast.WithQuery)
    assert query.ctes[0].name == "c"
    assert query.ctes[0].columns == ["x"]


def test_set_ops_intersect_binds_tighter():
    query = parse_query("SELECT 1 UNION SELECT 2 INTERSECT SELECT 3")
    assert query.op == "UNION"
    assert query.right.op == "INTERSECT"


def test_union_all_flag():
    assert parse_query("SELECT 1 UNION ALL SELECT 2").all
    assert not parse_query("SELECT 1 UNION DISTINCT SELECT 2").all


def test_values_as_query():
    query = parse_query("VALUES (1, 'a'), (2, 'b')")
    assert isinstance(query, ast.Values)
    assert len(query.rows) == 2


def test_star_and_qualified_star_items():
    query = parse_query("SELECT *, o.* FROM Orders AS o")
    assert isinstance(query.items[0].expr, ast.Star)
    assert query.items[1].expr.qualifier == "o"


def test_trailing_garbage_raises():
    with pytest.raises(ParseError):
        parse_statement("SELECT 1 FROM t xyzzy plugh")


def test_error_carries_position():
    with pytest.raises(ParseError) as exc:
        parse_statement("SELECT FROM t")
    assert "line 1" in str(exc.value)
