"""WITHIN DISTINCT: the grain-managing aggregate clause (paper section 6.3,
CALCITE-4483), including its use inside measures over wide tables."""

from __future__ import annotations

import pytest

from repro import Database, ExecutionError


@pytest.fixture
def wide(db: Database) -> Database:
    """Order lines with order-grain columns repeated per line."""
    db.execute(
        """CREATE TABLE lines (
             orderId INTEGER, customer VARCHAR, item VARCHAR,
             qty INTEGER, shipping INTEGER)"""
    )
    db.execute(
        """INSERT INTO lines VALUES
           (1, 'ann', 'a', 2, 5), (1, 'ann', 'b', 1, 5),
           (2, 'ann', 'a', 3, 7),
           (3, 'bo',  'c', 1, 4), (3, 'bo', 'd', 2, 4), (3, 'bo', 'e', 1, 4)"""
    )
    return db


def test_sum_within_distinct_avoids_double_counting(wide):
    naive = wide.execute("SELECT SUM(shipping) FROM lines").scalar()
    deduped = wide.execute(
        "SELECT SUM(shipping) WITHIN DISTINCT (orderId) FROM lines"
    ).scalar()
    assert naive == 5 + 5 + 7 + 4 + 4 + 4
    assert deduped == 5 + 7 + 4


def test_count_star_within_distinct(wide):
    orders = wide.execute(
        "SELECT COUNT(*) WITHIN DISTINCT (orderId) FROM lines"
    ).scalar()
    assert orders == 3


def test_within_distinct_multiple_keys(wide):
    value = wide.execute(
        "SELECT COUNT(*) WITHIN DISTINCT (customer, orderId) FROM lines"
    ).scalar()
    assert value == 3


def test_within_distinct_per_group(wide):
    rows = wide.execute(
        """SELECT customer, SUM(shipping) WITHIN DISTINCT (orderId) AS ship
           FROM lines GROUP BY customer ORDER BY customer"""
    ).rows
    assert rows == [("ann", 12), ("bo", 4)]


def test_within_distinct_with_filter(wide):
    value = wide.execute(
        """SELECT SUM(shipping) WITHIN DISTINCT (orderId)
             FILTER (WHERE customer = 'ann')
           FROM lines"""
    ).scalar()
    assert value == 12


def test_inconsistent_argument_raises(wide):
    wide.execute("INSERT INTO lines VALUES (2, 'ann', 'x', 1, 999)")
    with pytest.raises(ExecutionError, match="not constant"):
        wide.execute("SELECT SUM(shipping) WITHIN DISTINCT (orderId) FROM lines")


def test_per_line_aggregate_unaffected(wide):
    assert wide.execute("SELECT SUM(qty) FROM lines").scalar() == 10


def test_within_distinct_in_measure(wide):
    """The paper's section 6.4 suggestion: WITHIN DISTINCT preserves measure
    grain over denormalized wide tables."""
    wide.execute(
        """CREATE VIEW wideSales AS
           SELECT orderId, customer, item,
                  SUM(qty) AS MEASURE units,
                  SUM(shipping) WITHIN DISTINCT (orderId) AS MEASURE ship
           FROM lines"""
    )
    rows = wide.execute(
        """SELECT customer, AGGREGATE(units) AS units, AGGREGATE(ship) AS ship
           FROM wideSales GROUP BY customer ORDER BY customer"""
    ).rows
    assert rows == [("ann", 6, 12), ("bo", 4, 4)]


def test_within_distinct_round_trip():
    from repro.sql import parse_statement, to_sql

    sql = "SELECT SUM(x) WITHIN DISTINCT (k, j) FROM t"
    printed = to_sql(parse_statement(sql))
    assert "WITHIN DISTINCT (k, j)" in printed
    assert to_sql(parse_statement(printed)) == printed


def test_within_distinct_null_keys_form_one_group(db):
    db.execute("CREATE TABLE n (k INTEGER, v INTEGER)")
    db.execute("INSERT INTO n VALUES (NULL, 3), (NULL, 3), (1, 2)")
    assert (
        db.execute("SELECT SUM(v) WITHIN DISTINCT (k) FROM n").scalar() == 5
    )


def test_semi_additive_inventory_with_within_distinct(db):
    """Items-on-hand: LAST_VALUE over time per warehouse, then summed across
    warehouses — the paper's flagship semi-additive example (section 6.3)."""
    db.execute(
        "CREATE TABLE inv (warehouse VARCHAR, day DATE, onHand INTEGER)"
    )
    db.execute(
        """INSERT INTO inv VALUES
           ('w1', DATE '2024-01-01', 10), ('w1', DATE '2024-01-02', 12),
           ('w2', DATE '2024-01-01', 5),  ('w2', DATE '2024-01-02', 7)"""
    )
    total = db.execute(
        """SELECT SUM(latest) FROM
           (SELECT warehouse, LAST_VALUE(onHand ORDER BY day) AS latest
            FROM inv GROUP BY warehouse)"""
    ).scalar()
    assert total == 12 + 7
