"""The AT operator and its modifiers (paper section 3.5, Table 3)."""

from __future__ import annotations

import pytest

from repro import Database, MeasureError


@pytest.fixture
def mdb(paper_db: Database) -> Database:
    paper_db.execute(
        """CREATE VIEW mv AS
           SELECT prodName, custName, YEAR(orderDate) AS orderYear,
                  SUM(revenue) AS MEASURE r,
                  COUNT(*) AS MEASURE n
           FROM Orders"""
    )
    return paper_db


def test_all_clears_everything_including_predicates(mdb):
    rows = mdb.execute(
        """SELECT prodName, r AT (WHERE orderYear = 2023) AT (ALL) AS v
           FROM mv GROUP BY prodName"""
    ).rows
    # Outer AT applies first, so WHERE then replaces the context... and the
    # outer ALL runs before the inner WHERE: final context is year 2023.
    assert all(r[1] == 14 for r in rows)


def test_all_then_where_ordering(mdb):
    # Single AT list: ALL first, then WHERE replaces -> year filter.
    rows = mdb.execute(
        "SELECT prodName, r AT (ALL WHERE orderYear = 2023) AS v FROM mv GROUP BY prodName"
    ).rows
    assert all(r[1] == 14 for r in rows)
    # Reversed: WHERE replaces, then ALL clears -> grand total.
    rows = mdb.execute(
        "SELECT prodName, r AT (WHERE orderYear = 2023 ALL) AS v FROM mv GROUP BY prodName"
    ).rows
    assert all(r[1] == 25 for r in rows)


def test_all_named_dim_keeps_other_terms(mdb):
    rows = mdb.execute(
        """SELECT prodName, orderYear, r AT (ALL orderYear) AS v
           FROM mv GROUP BY prodName, orderYear ORDER BY prodName, orderYear"""
    ).rows
    by_key = {(r[0], r[1]): r[2] for r in rows}
    assert by_key[("Happy", 2022)] == 17
    assert by_key[("Happy", 2024)] == 17
    assert by_key[("Acme", 2023)] == 5


def test_all_multiple_dims(mdb):
    rows = mdb.execute(
        """SELECT prodName, custName, r AT (ALL prodName, custName) AS v
           FROM mv GROUP BY prodName, custName"""
    ).rows
    assert all(r[2] == 25 for r in rows)


def test_all_unknown_dim_rejected(mdb):
    from repro import BindError

    with pytest.raises(BindError):  # unknown name (MeasureError if non-dim)
        mdb.execute("SELECT r AT (ALL nosuch) FROM mv GROUP BY prodName")


def test_set_constant(mdb):
    rows = mdb.execute(
        """SELECT prodName, r AT (SET custName = 'Bob') AS bob
           FROM mv GROUP BY prodName ORDER BY prodName"""
    ).rows
    # Context: prodName = current AND custName = 'Bob'.
    assert rows == [("Acme", 5), ("Happy", 4), ("Whizz", None)]


def test_set_replaces_existing_term(mdb):
    rows = mdb.execute(
        """SELECT custName, r AT (SET custName = 'Bob') AS v
           FROM mv GROUP BY custName ORDER BY custName"""
    ).rows
    assert all(r[1] == 9 for r in rows)  # Bob's total regardless of group


def test_current_of_unconstrained_dim_is_null(mdb):
    rows = mdb.execute(
        """SELECT prodName, r AT (SET orderYear = CURRENT orderYear) AS v
           FROM mv GROUP BY prodName ORDER BY prodName"""
    ).rows
    # orderYear is not constrained by this GROUP BY: CURRENT orderYear is
    # NULL, and no order has a NULL year.
    assert all(r[1] is None for r in rows)


def test_current_after_set_sees_updated_value(mdb):
    rows = mdb.execute(
        """SELECT orderYear,
                  r AT (SET orderYear = 2023 SET orderYear = CURRENT orderYear + 1) AS v
           FROM mv GROUP BY orderYear ORDER BY orderYear"""
    ).rows
    # First SET pins 2023; second SET's CURRENT reads 2023 -> 2024 (value 7).
    assert all(r[1] == 7 for r in rows)


def test_visible_includes_join_and_where(mdb):
    rows = mdb.execute(
        """SELECT prodName, r AT (VISIBLE) AS viz, r
           FROM mv WHERE orderYear >= 2023 AND custName = 'Alice'
           GROUP BY prodName"""
    ).rows
    assert rows == [("Happy", 13, 17)]


def test_visible_noop_without_filters(mdb):
    rows = mdb.execute(
        "SELECT prodName, r AT (VISIBLE) AS viz, r FROM mv GROUP BY prodName"
    ).rows
    assert all(r[1] == r[2] for r in rows)


def test_where_with_correlation_to_group(mdb):
    rows = mdb.execute(
        """SELECT custName, r AT (WHERE custName = mv.custName AND orderYear = 2023) AS v
           FROM mv GROUP BY custName ORDER BY custName"""
    ).rows
    assert rows == [("Alice", 6), ("Bob", 5), ("Celia", 3)]


def test_where_references_removed_rows(mdb):
    value = mdb.execute(
        """SELECT r AT (WHERE custName = 'Bob') AS v
           FROM mv WHERE custName <> 'Bob' GROUP BY prodName LIMIT 1"""
    ).scalar()
    assert value == 9  # Bob's orders, though removed by the query WHERE


def test_at_in_row_grain_select(mdb):
    """Row-grain context pins every dimension; ALL releases the named ones."""
    rows = mdb.execute(
        """SELECT prodName, custName, r AT (ALL custName, orderYear) AS prodTotal
           FROM mv ORDER BY prodName, custName"""
    ).rows
    by_prod = {(r[0]): r[2] for r in rows}
    assert by_prod["Happy"] == 17
    assert by_prod["Acme"] == 5


def test_at_row_grain_partial_release(mdb):
    """ALL of one dimension keeps the others pinned to the current row."""
    rows = mdb.execute(
        """SELECT prodName, custName, orderYear, r AT (ALL custName) AS v
           FROM mv ORDER BY prodName, custName, orderYear"""
    ).rows
    by_key = {(r[0], r[2]): r[3] for r in rows}
    assert by_key[("Happy", 2023)] == 6
    assert by_key[("Happy", 2022)] == 4
    assert by_key[("Acme", 2023)] == 5


def test_multiple_measures_different_contexts_in_one_query(mdb):
    row = mdb.execute(
        """SELECT prodName,
                  r AS mine,
                  r AT (ALL) AS total,
                  r / r AT (ALL) AS share,
                  n AT (ALL) AS orderCount
           FROM mv WHERE prodName = 'Happy' GROUP BY prodName"""
    ).rows[0]
    assert row == ("Happy", 17, 25, 17 / 25, 5)


def test_set_with_expression_value(mdb):
    rows = mdb.execute(
        """SELECT orderYear, r AT (SET orderYear = 2020 + 3) AS y23
           FROM mv GROUP BY orderYear"""
    ).rows
    assert all(r[1] == 14 for r in rows)


def test_set_to_null_matches_nothing(mdb):
    rows = mdb.execute(
        "SELECT prodName, r AT (SET custName = NULL) AS v FROM mv GROUP BY prodName"
    ).rows
    assert all(r[1] is None for r in rows)


def test_adhoc_dim_all(mdb):
    """ALL on an ad hoc dimension removes the matching group term."""
    rows = mdb.execute(
        """SELECT YEAR(orderDate) AS y, sr AT (ALL YEAR(orderDate)) AS v
           FROM (SELECT *, SUM(revenue) AS MEASURE sr FROM Orders)
           GROUP BY YEAR(orderDate) ORDER BY y"""
    ).rows
    assert all(r[1] == 25 for r in rows)


def test_at_chain_equals_flat_list(mdb):
    flat = mdb.execute(
        """SELECT prodName, r AT (SET prodName = 'Happy' SET custName = 'Bob') AS v
           FROM mv GROUP BY prodName ORDER BY prodName"""
    ).rows
    chained = mdb.execute(
        """SELECT prodName,
                  (r AT (SET custName = 'Bob')) AT (SET prodName = 'Happy') AS v
           FROM mv GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert flat == chained
    assert all(r[1] == 4 for r in flat)  # Happy + Bob


def test_current_outside_set_rejected(mdb):
    with pytest.raises(MeasureError):
        mdb.execute("SELECT CURRENT prodName FROM mv GROUP BY prodName")


def test_where_modifier_cannot_reference_measures(mdb):
    with pytest.raises(MeasureError):
        mdb.execute(
            "SELECT r AT (WHERE n > 1) FROM mv GROUP BY prodName"
        )


def test_where_equality_uses_strict_equals_for_nulls(mdb):
    """AT (WHERE custName = NULL) matches nothing: '=' is not null-safe."""
    rows = mdb.execute(
        "SELECT prodName, r AT (WHERE custName = NULL) AS v FROM mv GROUP BY prodName"
    ).rows
    assert all(r[1] is None for r in rows)


def test_all_does_not_remove_where_equality_terms(mdb):
    """ALL dim removes *dimension* terms; WHERE-created filters are part of
    the predicate and survive (per the paper: the measure value depends on
    the predicate's rows, not on how the predicate was spelled)."""
    rows = mdb.execute(
        """SELECT prodName, r AT (WHERE orderYear = 2023 ALL orderYear) AS v
           FROM mv GROUP BY prodName"""
    ).rows
    assert all(r[1] == 14 for r in rows)  # the year filter survives ALL


def test_set_does_not_replace_where_equality_terms(mdb):
    """SET adds its own term; a WHERE-created equality on the same dimension
    also remains, so conflicting values yield the empty context."""
    rows = mdb.execute(
        """SELECT prodName, r AT (WHERE orderYear = 2023 SET orderYear = 2024) AS v
           FROM mv GROUP BY prodName"""
    ).rows
    assert all(r[1] is None for r in rows)


def test_where_equality_decomposition_hits_dimension_index(mdb):
    """The decomposed equality is served by the source index: evaluating per
    group costs one computation per distinct correlated value."""
    mdb.execute(
        """SELECT prodName, r AT (WHERE prodName = mv.prodName) AS v
           FROM mv GROUP BY prodName"""
    )
    stats = mdb.last_stats
    assert stats.measure_evaluations - stats.measure_cache_hits == 3
