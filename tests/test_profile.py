"""The observability subsystem: tracer spans, operator metrics,
QueryProfile serialization, EXPLAIN ANALYZE, and the zero-cost-off path."""

from __future__ import annotations

import json
import re

import pytest

from repro import Database, SqlError
from repro.profile import OperatorMetrics, Profiler, Span, Tracer


# -- tracer: span nesting, budget, serialization ------------------------------


def test_span_nesting_and_tree():
    clock = iter(range(0, 1_000_000, 1000)).__next__
    tracer = Tracer(clock=lambda: clock() * 1_000_000)
    outer = tracer.begin("bind")
    inner = tracer.begin("resolve")
    tracer.end(inner)
    tracer.end(outer)
    sibling = tracer.begin("execute")
    tracer.end(sibling)
    root = tracer.finish()
    assert [s.name for s in root.walk()] == [
        "query", "bind", "resolve", "execute",
    ]
    assert root.children[0].children == [inner]
    assert root.find("resolve") is inner
    assert root.find("nope") is None
    # Durations are monotone: each span fits inside its parent.
    assert inner.duration_ms <= outer.duration_ms <= root.duration_ms


def test_span_to_dict_is_stable():
    tracer = Tracer()
    span = tracer.begin("execute", "phase")
    span.meta["b"] = 2
    span.meta["a"] = 1
    tracer.end(span)
    entry = tracer.finish().to_dict()
    assert list(entry) == ["name", "kind", "duration_ms", "children"]
    child = entry["children"][0]
    assert child["name"] == "execute"
    assert child["kind"] == "phase"
    assert list(child["meta"]) == ["a", "b"]  # meta keys sorted
    # Serializes to JSON as-is.
    json.dumps(entry)


def test_span_budget_drops_not_crashes():
    tracer = Tracer(max_spans=3)
    spans = [tracer.begin(f"s{i}") for i in range(6)]
    assert [s is None for s in spans] == [False, False, False, True, True, True]
    assert tracer.dropped == 3
    for span in reversed(spans):
        tracer.end(span)  # None is accepted
    root = tracer.finish()
    assert sum(1 for _ in root.walk()) == 4  # root + 3 recorded


def test_end_closes_dangling_children():
    """An exception that unwinds past inner end() calls must not corrupt
    the stack: ending the outer span closes the leaked inner spans."""
    tracer = Tracer()
    outer = tracer.begin("outer")
    inner = tracer.begin("inner")  # never explicitly ended
    tracer.end(outer)
    assert tracer.current is tracer.root
    assert inner.end_ns != 0
    after = tracer.begin("after")
    tracer.end(after)
    assert [c.name for c in tracer.root.children] == ["outer", "after"]


def test_span_contextmanager():
    tracer = Tracer()
    with tracer.span("bind"):
        with tracer.span("resolve"):
            pass
    root = tracer.finish()
    assert [s.name for s in root.walk()] == ["query", "bind", "resolve"]


# -- operator metrics ---------------------------------------------------------


def test_operator_metrics_describe():
    metrics = OperatorMetrics("Scan(t)")
    metrics.calls = 2
    metrics.rows_out = 10
    metrics.rows_in = 4
    metrics.time_ns = 1_500_000
    metrics.count("hash_probes", 7)
    text = metrics.describe()
    assert "rows=10" in text and "calls=2" in text
    assert "rows_in=4" in text and "hash_probes=7" in text
    assert "time=1.500ms" in text
    assert "time=" not in metrics.describe(timing=False)


def test_profiler_counts_per_operator(paper_db):
    paper_db.profile_enabled = True
    result = paper_db.execute(
        "SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName"
    )
    profile = paper_db.last_profile()
    tree = profile.operator_tree
    # Root operator's rows match the result; the scan saw all 5 orders.
    assert tree["rows_out"] == len(result.rows)
    labels = {line.split(" (")[0].strip() for line in profile.plan_lines()}
    assert any(label.startswith("Scan(Orders)") for label in labels)
    scan = [n for n in _walk_tree(tree) if n["label"].startswith("Scan")]
    assert scan and scan[0]["rows_out"] == 5
    aggregate = [
        n for n in _walk_tree(tree) if n["label"].startswith("Aggregate")
    ]
    assert aggregate and aggregate[0]["counters"]["groups"] == 3
    assert profile.counters["rows_scanned"] == 5


def _walk_tree(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk_tree(child)


def test_profiler_join_counters(paper_db):
    paper_db.profile_enabled = True
    paper_db.execute(
        """SELECT o.prodName, c.custAge FROM Orders AS o
           JOIN Customers AS c ON o.custName = c.custName"""
    )
    profile = paper_db.last_profile()
    joins = [
        n for n in _walk_tree(profile.operator_tree) if "Join" in n["label"]
    ]
    assert joins
    counters = joins[0]["counters"]
    # Either the hash or the nested-loop path ran, and counted its work.
    assert "hash_probes" in counters or "comparisons" in counters


def test_profiler_measure_cache_metrics(orders_db):
    orders_db.profile_enabled = True
    orders_db.execute(
        """SELECT prodName, AGGREGATE(profitMargin)
           FROM EnhancedOrders GROUP BY prodName"""
    )
    profile = orders_db.last_profile()
    assert "profitMargin" in profile.measures
    entry = profile.measures["profitMargin"]
    assert entry["evaluations"] >= 3  # one per group at least
    assert profile.counters["measure_evaluations"] >= 3
    assert any(line.startswith("measure profitMargin:")
               for line in profile.summary_lines())


# -- the zero-cost-when-off path ---------------------------------------------


def test_profile_off_never_constructs_profiler(paper_db, monkeypatch):
    """With profiling off, no Profiler (and hence no Tracer, no span, no
    timestamp) may be allocated anywhere in the query path."""
    import repro.profile
    import repro.profile.profiler

    def boom(*args, **kwargs):
        raise AssertionError("Profiler constructed with profiling off")

    monkeypatch.setattr(repro.profile, "Profiler", boom)
    monkeypatch.setattr(repro.profile.profiler.Profiler, "__init__", boom)
    result = paper_db.execute(
        "SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName"
    )
    assert len(result.rows) == 3
    assert paper_db.last_profile() is None


def test_execution_context_defaults_to_no_profiler(db):
    db.execute("CREATE TABLE t (x INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    db.execute("SELECT x FROM t")
    assert db.last_stats.profiler is None


# -- Database(profile=True) / last_profile ------------------------------------


def test_database_profile_flag(paper_db):
    db = Database(profile=True)
    db.execute("CREATE TABLE t (x INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    result = db.execute("SELECT x FROM t WHERE x > 1")
    profile = db.last_profile()
    assert profile is not None
    assert profile.result_rows == len(result.rows) == 1
    # The profile covers every phase including parse.
    phase_names = [c.name for c in profile.root_span.children]
    for name in ("parse", "bind", "execute"):
        assert name in phase_names
    assert profile.phase_ms("parse") is not None
    assert profile.total_ms >= 0.0
    assert profile.sql is not None and "SELECT" in profile.sql


def test_profile_serialization_stability(paper_db):
    paper_db.profile_enabled = True
    paper_db.execute("SELECT COUNT(*) FROM Orders")
    profile = paper_db.last_profile()
    entry = profile.to_dict()
    assert list(entry) == [
        "schema_version", "sql", "total_ms", "result_rows",
        "spans_dropped", "phases", "plan", "counters", "measures",
    ]
    assert entry["spans_dropped"] == 0
    assert entry["schema_version"] == 1
    assert list(entry["counters"]) == sorted(entry["counters"])
    # to_json round-trips to the same dict.
    assert json.loads(profile.to_json()) == entry
    assert json.loads(profile.to_json(indent=2)) == entry


# -- EXPLAIN ANALYZE ----------------------------------------------------------

_TIME = re.compile(r"=\d+\.\d{3}ms")

LISTING1 = """SELECT prodName, COUNT(*) AS c,
               (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
        FROM Orders GROUP BY prodName ORDER BY prodName"""


def test_explain_analyze_exact_output(paper_db):
    """The full EXPLAIN ANALYZE rendering for paper Listing 1, exactly
    (timings normalized — everything else is deterministic)."""
    result = paper_db.execute(f"EXPLAIN ANALYZE {LISTING1}")
    lines = [_TIME.sub("=<T>", line) for (line,) in result.rows]
    assert lines == [
        "Sort (rows=3 calls=1 rows_in=3 time=<T>)",
        "  Project (rows=3 calls=1 rows_in=3 time=<T>)",
        "    Aggregate(keys=1, aggs=3, sets=1) "
        "(rows=3 calls=1 rows_in=5 time=<T> groups=3)",
        "      Scan(Orders) (rows=5 calls=1 time=<T>)",
        "phases: rewrite=<T> bind=<T> optimize=<T> execute=<T> total=<T>",
        "counters: aggregate_input_rows=15 aggregate_invocations=9 "
        "hash_joins=0 measure_cache_hits=0 measure_evaluations=0 "
        "nested_loop_joins=0 rows_scanned=5 subquery_cache_hits=0 "
        "subquery_executions=0",
    ]


def test_explain_analyze_executes_the_query(paper_db):
    """EXPLAIN ANALYZE genuinely runs the query (PostgreSQL semantics): the
    profile it renders reflects real row counts."""
    result = paper_db.execute("EXPLAIN ANALYZE SELECT * FROM Orders")
    assert any("rows=5" in line for (line,) in result.rows)
    profile = paper_db.last_profile()
    assert profile.result_rows == 5


def test_explain_lint_analyze_combined(paper_db):
    result = paper_db.execute(
        "EXPLAIN (LINT, ANALYZE) SELECT prodName FROM Orders"
    )
    lines = [line for (line,) in result.rows]
    assert lines[0] == "lint: clean"
    assert any(line.startswith("Scan(Orders)") or "Scan(Orders)" in line
               for line in lines)
    assert any(line.startswith("phases:") for line in lines)


def test_explain_analyze_measure_query(orders_db):
    result = orders_db.execute(
        """EXPLAIN ANALYZE SELECT prodName, AGGREGATE(profitMargin)
           FROM EnhancedOrders GROUP BY prodName"""
    )
    lines = [line for (line,) in result.rows]
    assert any(line.startswith("measure profitMargin:") for line in lines)


def test_explain_analyze_ddl_is_an_error(paper_db):
    with pytest.raises(SqlError, match="RP111"):
        paper_db.execute("EXPLAIN ANALYZE INSERT INTO Orders SELECT * FROM Orders")
    with pytest.raises(SqlError, match="RP111"):
        paper_db.execute("EXPLAIN DROP TABLE Orders")
    # And the statement never ran.
    assert paper_db.execute("SELECT COUNT(*) FROM Orders").scalar() == 5


def test_lint_rp111_on_explained_ddl(paper_db):
    diags = paper_db.lint("EXPLAIN ANALYZE DROP TABLE Orders")
    assert any(d.code == "RP111" for d in diags)
    # The wrapped statement still gets its own diagnostics.
    diags = paper_db.lint(
        "EXPLAIN ANALYZE CREATE VIEW v AS SELECT * FROM Orders"
    )
    codes = {d.code for d in diags}
    assert "RP111" in codes and "RP109" in codes  # SELECT * in a view def


def test_explain_analyze_round_trips_through_printer():
    from repro.sql import parse_statement, to_sql

    for sql, printed in [
        ("EXPLAIN ANALYZE SELECT 1", "EXPLAIN ANALYZE SELECT 1"),
        ("EXPLAIN (ANALYZE) SELECT 1", "EXPLAIN ANALYZE SELECT 1"),
        ("EXPLAIN (ANALYZE, LINT) SELECT 1", "EXPLAIN (LINT, ANALYZE) SELECT 1"),
        ("EXPLAIN (LINT, ANALYZE) SELECT 1", "EXPLAIN (LINT, ANALYZE) SELECT 1"),
        ("EXPLAIN (LINT) SELECT 1", "EXPLAIN (LINT) SELECT 1"),
        ("EXPLAIN ANALYZE DROP TABLE t", "EXPLAIN ANALYZE DROP TABLE t"),
    ]:
        assert to_sql(parse_statement(sql)) == printed
        # Fixed point.
        assert to_sql(parse_statement(printed)) == printed


def test_explain_unknown_option_rejected():
    from repro.sql import parse_statement

    with pytest.raises(SqlError, match="EXPLAIN option"):
        parse_statement("EXPLAIN (LINT, VERBOSE) SELECT 1")
    # An unrecognized leading word is not an option list at all, so it fails
    # as a malformed parenthesized query — still a typed error.
    with pytest.raises(SqlError):
        parse_statement("EXPLAIN (VERBOSE) SELECT 1")


# -- matview hit/miss latency -------------------------------------------------


@pytest.fixture
def summary_db(db):
    db.execute("CREATE TABLE sales (region VARCHAR, amount INTEGER)")
    db.execute(
        "INSERT INTO sales VALUES ('east', 10), ('east', 20), ('west', 5)"
    )
    db.execute(
        """CREATE MATERIALIZED VIEW region_totals AS
           SELECT region, SUM(amount) AS total
           FROM sales GROUP BY region"""
    )
    return db


def test_summary_hit_latency_recorded(summary_db):
    summary_db.execute(
        "SELECT region, SUM(amount) FROM sales GROUP BY region"
    )
    stats = summary_db.summary_stats()["region_totals"]
    assert stats["hits"] == 1
    assert stats["hit_time_ms"] > 0.0
    assert stats["miss_time_ms"] == 0.0


def test_summary_miss_latency_recorded(summary_db):
    # An UPDATE invalidates the summary (inserts alone merge incrementally),
    # making it a stale-skipped candidate: the query runs from source and
    # its latency lands in miss_time_ms.
    summary_db.execute("UPDATE sales SET amount = 6 WHERE region = 'west'")
    summary_db.execute(
        "SELECT region, SUM(amount) FROM sales GROUP BY region"
    )
    stats = summary_db.summary_stats()["region_totals"]
    assert stats["hits"] == 0
    assert stats["stale_skips"] == 1
    assert stats["miss_time_ms"] > 0.0
    assert stats["hit_time_ms"] == 0.0


def test_unrelated_query_records_no_latency(summary_db):
    summary_db.execute("SELECT 1")
    stats = summary_db.summary_stats()["region_totals"]
    assert stats["hit_time_ms"] == 0.0 and stats["miss_time_ms"] == 0.0


# -- shell integration --------------------------------------------------------


def test_shell_profile_toggle():
    import io

    from repro.cli import Shell

    out = io.StringIO()
    shell = Shell(out=out)
    shell.handle_line("\\profile")
    shell.handle_line("CREATE TABLE t (x INTEGER);")
    shell.handle_line("INSERT INTO t VALUES (1), (2);")
    shell.handle_line("SELECT x FROM t ORDER BY x;")
    text = out.getvalue()
    assert "profile on" in text
    assert "Scan(t)" in text        # annotated operator tree printed
    assert "phases:" in text
    shell.handle_line("\\profile")
    assert "profile off" in out.getvalue()


def test_shell_profile_silent_on_ddl_only():
    import io

    from repro.cli import Shell

    out = io.StringIO()
    shell = Shell(out=out)
    shell.handle_line("\\profile")
    shell.handle_line("CREATE TABLE t (x INTEGER);")
    assert "phases:" not in out.getvalue()


# -- expansion tracing --------------------------------------------------------


def test_expand_auto_traced(orders_db):
    orders_db.profile_enabled = True
    orders_db.expand(
        """SELECT prodName, AGGREGATE(profitMargin) AS pm
           FROM EnhancedOrders GROUP BY prodName""",
        strategy="auto",
    )
    profile = orders_db.last_profile()
    attempts = [
        s for s in profile.root_span.walk() if s.kind == "expand"
    ]
    assert attempts, "auto cascade should record expand:* attempt spans"
    assert all("outcome" in s.meta for s in attempts)
