"""Property-based tests (hypothesis) of the paper's core invariants.

These run the same randomized order data through both evaluation paths
(top-down interpreter vs static SQL expansion), through measures vs plain
SQL, and with the context cache on vs off — all must agree.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database

PRODUCTS = ["p1", "p2", "p3"]
CUSTOMERS = ["c1", "c2"]

order_rows = st.lists(
    st.tuples(
        st.sampled_from(PRODUCTS),
        st.sampled_from(CUSTOMERS),
        st.integers(2020, 2022),
        st.integers(1, 100),
        st.integers(0, 50),
    ),
    min_size=1,
    max_size=25,
)


def make_db(rows, **kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table_from_rows(
        "Orders",
        [
            ("prodName", "VARCHAR"),
            ("custName", "VARCHAR"),
            ("y", "INTEGER"),
            ("revenue", "INTEGER"),
            ("cost", "INTEGER"),
        ],
        rows,
    )
    db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, custName, y,
                  SUM(revenue) AS MEASURE rev,
                  COUNT(*) AS MEASURE n
           FROM Orders"""
    )
    return db


def normalized(rows):
    cleaned = [
        tuple(round(v, 9) if isinstance(v, float) else v for v in row)
        for row in rows
    ]
    return sorted(
        cleaned, key=lambda row: tuple((v is None, str(v)) for v in row)
    )


@settings(max_examples=25, deadline=None)
@given(order_rows)
def test_aggregate_measure_equals_plain_sql(rows):
    db = make_db(rows)
    measured = db.execute(
        "SELECT prodName, AGGREGATE(rev) FROM eo GROUP BY prodName"
    ).rows
    plain = db.execute(
        "SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName"
    ).rows
    assert normalized(measured) == normalized(plain)


@settings(max_examples=25, deadline=None)
@given(order_rows)
def test_interpreter_equals_expansion(rows):
    db = make_db(rows)
    sql = """SELECT prodName, y, AGGREGATE(rev) AS r,
                    rev AT (ALL y) AS prodTotal,
                    rev AT (SET y = CURRENT y - 1) AS prev
             FROM eo GROUP BY prodName, y"""
    interpreted = db.execute(sql).rows
    expanded = db.execute(db.expand(sql)).rows
    assert normalized(interpreted) == normalized(expanded)


@settings(max_examples=25, deadline=None)
@given(order_rows)
def test_cache_on_off_equivalence(rows):
    sql = """SELECT prodName, AGGREGATE(rev) AS r, rev AT (ALL) AS total
             FROM eo GROUP BY prodName"""
    hot = make_db(rows, cache=True).execute(sql).rows
    cold = make_db(rows, cache=False).execute(sql).rows
    assert normalized(hot) == normalized(cold)


@settings(max_examples=25, deadline=None)
@given(order_rows)
def test_shares_sum_to_one(rows):
    db = make_db(rows)
    shares = db.execute(
        """SELECT rev / rev AT (ALL prodName) AS share
           FROM eo GROUP BY prodName"""
    ).column("share")
    assert sum(shares) == pytest.approx(1.0)


@settings(max_examples=25, deadline=None)
@given(order_rows)
def test_group_terms_partition_the_total(rows):
    """Sum of per-group measure values equals the ALL value (additivity)."""
    db = make_db(rows)
    result = db.execute(
        "SELECT prodName, AGGREGATE(rev) AS r, rev AT (ALL) AS total "
        "FROM eo GROUP BY prodName"
    )
    totals = {row[2] for row in result.rows}
    assert len(totals) == 1
    assert sum(row[1] for row in result.rows) == totals.pop()


@settings(max_examples=25, deadline=None)
@given(order_rows)
def test_rollup_total_row_equals_all(rows):
    db = make_db(rows)
    result = db.execute(
        """SELECT prodName, rev AS r FROM eo
           GROUP BY ROLLUP(prodName)"""
    ).rows
    total_row = [r for r in result if r[0] is None]
    assert len(total_row) == 1
    assert total_row[0][1] == sum(r[3] for r in db.catalog.base_table("Orders").table.rows)


@settings(max_examples=25, deadline=None)
@given(order_rows)
def test_visible_equals_aggregate(rows):
    """AGGREGATE(m) == m AT (VISIBLE) on arbitrary filtered queries."""
    db = make_db(rows)
    result = db.execute(
        """SELECT prodName, AGGREGATE(rev) AS a, rev AT (VISIBLE) AS v
           FROM eo WHERE y >= 2021 GROUP BY prodName"""
    ).rows
    assert all(r[1] == r[2] for r in result)


@settings(max_examples=25, deadline=None)
@given(order_rows)
def test_window_strategy_agrees_with_interpreter(rows):
    db = make_db(rows)
    sql = """SELECT prodName, custName, revenue FROM
             (SELECT prodName, custName, revenue,
                     AVG(revenue) AS MEASURE avgRev FROM Orders) AS o
             WHERE o.revenue >= o.avgRev AT (WHERE prodName = o.prodName)"""
    interpreted = db.execute(sql).rows
    windowed = db.execute(db.expand(sql, strategy="window")).rows
    assert normalized(interpreted) == normalized(windowed)


@settings(max_examples=25, deadline=None)
@given(order_rows)
def test_inline_strategy_agrees_with_interpreter(rows):
    db = make_db(rows)
    sql = """SELECT prodName, AGGREGATE(rev) AS r FROM eo
             WHERE y > 2020 GROUP BY prodName"""
    interpreted = db.execute(sql).rows
    inlined = db.execute(db.expand(sql, strategy="inline")).rows
    assert normalized(interpreted) == normalized(inlined)


@settings(max_examples=20, deadline=None)
@given(order_rows, st.sampled_from(PRODUCTS))
def test_set_modifier_equals_filtered_query(rows, pinned):
    """m AT (SET prodName = 'x') equals a fresh query filtered to x."""
    db = make_db(rows)
    pinned_value = db.execute(
        f"SELECT rev AT (ALL SET prodName = '{pinned}') FROM eo GROUP BY custName LIMIT 1"
    ).rows
    direct = db.execute(
        f"SELECT SUM(revenue) FROM Orders WHERE prodName = '{pinned}'"
    ).scalar()
    if pinned_value:
        assert pinned_value[0][0] == direct


@settings(max_examples=20, deadline=None)
@given(order_rows)
def test_rollup_expansion_equivalence(rows):
    """Grouping-set expansion (UNION ALL rewrite) matches the interpreter."""
    db = make_db(rows)
    sql = """SELECT prodName, custName, AGGREGATE(rev) AS r, rev AS raw
             FROM eo GROUP BY ROLLUP(prodName, custName)"""
    interpreted = db.execute(sql).rows
    expanded = db.execute(db.expand(sql)).rows
    assert normalized(interpreted) == normalized(expanded)


@settings(max_examples=20, deadline=None)
@given(order_rows)
def test_count_measure_matches_group_sizes(rows):
    db = make_db(rows)
    measured = db.execute(
        "SELECT prodName, AGGREGATE(n) FROM eo GROUP BY prodName"
    ).rows
    plain = db.execute(
        "SELECT prodName, COUNT(*) FROM Orders GROUP BY prodName"
    ).rows
    assert normalized(measured) == normalized(plain)
