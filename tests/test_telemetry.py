"""Telemetry subsystem: metrics registry, event/slow-query logs, trace
export, SHOW STATS, shell commands, and the bench regression gate."""

from __future__ import annotations

import io
import json

import pytest

from repro import Database, SqlError
from repro.cli import Shell
from repro.profile import Profiler
from repro.sql.parser import parse_statement
from repro.sql.printer import to_sql
from repro.telemetry import (
    TRACE_SCHEMA,
    EventLog,
    MetricsRegistry,
    SlowQueryLog,
    Telemetry,
    TraceBuffer,
    statement_kind,
)

ORDERS = [
    ("A", "x", 10),
    ("A", "y", 20),
    ("B", "x", 30),
    ("B", "y", 5),
    ("C", "z", 7),
]


def make_db(**kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table_from_rows(
        "Orders",
        [("prodName", "VARCHAR"), ("custName", "VARCHAR"), ("revenue", "INTEGER")],
        ORDERS,
    )
    return db


# -- metrics registry ---------------------------------------------------------


def test_counter_basics():
    reg = MetricsRegistry()
    c = reg.counter("things_total", "Things.", ("kind",))
    c.inc(kind="a")
    c.inc(2, kind="a")
    c.inc(kind="b")
    assert c.value(kind="a") == 3
    assert c.value(kind="b") == 1
    assert c.value(kind="never") == 0
    assert c.total() == 4
    assert c.labelsets() == [{"kind": "a"}, {"kind": "b"}]


def test_counter_rejects_decrease_and_bad_labels():
    reg = MetricsRegistry()
    c = reg.counter("n_total", "N.", ("kind",))
    with pytest.raises(ValueError):
        c.inc(-1, kind="a")
    with pytest.raises(ValueError):
        c.inc(wrong="a")
    with pytest.raises(ValueError):
        c.inc()  # label missing entirely


def test_gauge_up_and_down():
    reg = MetricsRegistry()
    g = reg.gauge("pool", "Pool size.")
    g.set(5)
    g.inc(2)
    g.dec()
    assert g.value() == 6


def test_histogram_buckets_sum_to_count():
    reg = MetricsRegistry()
    h = reg.histogram("lat_ms", "Latency.", buckets=(1.0, 10.0, 100.0))
    for v in (0.5, 1.0, 2.0, 50.0, 500.0, 5000.0):
        h.observe(v)
    counts = h.bucket_counts()
    # bisect_left: a value equal to a boundary lands in that bucket (le
    # semantics), so 1.0 joins 0.5 in the first bucket.
    assert counts == [2, 1, 1, 2]
    assert sum(counts) == h.count() == 6
    assert h.sum_() == pytest.approx(5553.5)


def test_histogram_labels_partition_series():
    reg = MetricsRegistry()
    h = reg.histogram("d_ms", "D.", ("kind",), buckets=(1.0,))
    h.observe(0.5, kind="select")
    h.observe(2.0, kind="select")
    h.observe(0.1, kind="insert")
    assert h.count(kind="select") == 2
    assert h.count(kind="insert") == 1
    assert h.bucket_counts(kind="select") == [1, 1]


def test_registration_is_idempotent_but_conflicts_raise():
    reg = MetricsRegistry()
    a = reg.counter("x_total", "X.", ("k",))
    assert reg.counter("x_total", "X.", ("k",)) is a
    with pytest.raises(ValueError):
        reg.counter("x_total", "X.", ("other",))
    with pytest.raises(ValueError):
        reg.gauge("x_total", "X.", ("k",))


def test_prometheus_rendering():
    reg = MetricsRegistry()
    c = reg.counter("q_total", "Queries.", ("kind",))
    c.inc(3, kind="select")
    h = reg.histogram("d_ms", "Duration.", buckets=(1.0, 10.0))
    h.observe(0.5)
    h.observe(5.0)
    h.observe(50.0)
    text = reg.render_prometheus()
    lines = text.splitlines()
    assert "# HELP q_total Queries." in lines
    assert "# TYPE q_total counter" in lines
    assert 'q_total{kind="select"} 3' in lines
    assert "# TYPE d_ms histogram" in lines
    # Prometheus buckets are cumulative even though storage is per-bucket.
    assert 'd_ms_bucket{le="1"} 1' in lines
    assert 'd_ms_bucket{le="10"} 2' in lines
    assert 'd_ms_bucket{le="+Inf"} 3' in lines
    assert "d_ms_sum 55.5" in lines
    assert "d_ms_count 3" in lines
    assert text.endswith("\n")


def test_prometheus_label_escaping():
    reg = MetricsRegistry()
    c = reg.counter("e_total", "E.", ("msg",))
    c.inc(msg='say "hi"\nback\\slash')
    text = reg.render_prometheus()
    assert 'msg="say \\"hi\\"\\nback\\\\slash"' in text


def test_registry_rows_flatten_histograms():
    reg = MetricsRegistry()
    h = reg.histogram("d_ms", "D.", buckets=(1.0,))
    h.observe(0.5)
    h.observe(9.0)
    rows = reg.rows()
    assert ("d_ms_bucket", "le=1", 1.0) in rows
    assert ("d_ms_bucket", "le=+Inf", 1.0) in rows
    assert ("d_ms_count", "", 2.0) in rows


# -- event and slow-query logs ------------------------------------------------


def test_event_log_seq_ts_and_ring():
    log = EventLog(capacity=3)
    for i in range(5):
        log.record("query", i=i)
    assert len(log) == 3
    assert log.dropped == 2
    events = log.tail()
    assert [e["i"] for e in events] == [2, 3, 4]
    assert [e["seq"] for e in events] == [3, 4, 5]
    assert all("ts" in e and e["event"] == "query" for e in events)
    assert [e["i"] for e in log.tail(2)] == [3, 4]
    for line in log.to_jsonl().splitlines():
        json.loads(line)


def test_event_log_sink_receives_json_lines():
    sink = io.StringIO()
    log = EventLog(capacity=10, sink=sink)
    log.record("query", sql="SELECT 1")
    log.record("error", message="boom")
    lines = sink.getvalue().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["sql"] == "SELECT 1"
    assert json.loads(lines[1])["event"] == "error"


def test_slow_query_log_ring():
    log = SlowQueryLog(5.0, capacity=2)
    log.add("q1", 6.0, None)
    log.add("q2", 7.0, {"schema_version": 1})
    log.add("q3", 8.0, None)
    entries = log.entries()
    assert [e["sql"] for e in entries] == ["q2", "q3"]
    assert entries[0]["threshold_ms"] == 5.0
    assert entries[0]["profile"] == {"schema_version": 1}


# -- trace export -------------------------------------------------------------


def profiled_span_tree():
    profiler = Profiler()
    with profiler.phase("parse"):
        pass
    with profiler.phase("execute"):
        with profiler.tracer.span("scan", "operator") as span:
            span.meta["table"] = "Orders"
    return profiler.finish(sql="SELECT 1", result_rows=1)


def test_trace_capture_and_export():
    profile = profiled_span_tree()
    buf = TraceBuffer(capacity=10)
    trace_id = buf.capture(profile.root_span, sql="SELECT 1")
    export = buf.export()
    assert export["schema"] == TRACE_SCHEMA
    assert export["trace_count"] == 1
    trace = export["traces"][0]
    assert trace["trace_id"] == trace_id
    assert len(trace_id) == 32
    spans = trace["spans"]
    root = spans[0]
    assert root["parent_span_id"] is None
    assert root["start_ns"] == 0
    ids = {s["span_id"] for s in spans}
    assert len(ids) == len(spans)
    for span in spans[1:]:
        assert span["parent_span_id"] in ids
        assert len(span["span_id"]) == 16
        assert span["end_ns"] >= span["start_ns"] >= 0
    scan = next(s for s in spans if s["name"] == "scan")
    assert scan["attributes"] == {"table": "Orders"}
    json.loads(buf.export_json())


def test_trace_buffer_ring_drops():
    profile = profiled_span_tree()
    buf = TraceBuffer(capacity=2)
    for _ in range(3):
        buf.capture(profile.root_span)
    assert len(buf) == 2
    assert buf.export()["traces_dropped"] == 1


# -- statement classification -------------------------------------------------


def test_statement_kind():
    assert statement_kind(parse_statement("SELECT 1")) == "select"
    assert statement_kind(parse_statement("SHOW STATS")) == "show_stats"
    assert (
        statement_kind(parse_statement("CREATE TABLE t (x INTEGER)"))
        == "create_table"
    )
    assert statement_kind(parse_statement("INSERT INTO t VALUES (1)")) == "insert"


# -- Database integration -----------------------------------------------------


def test_telemetry_off_is_the_default():
    db = Database()
    assert db.telemetry is None
    assert db.metrics() == {}
    assert db.metrics_text() == ""
    assert db.events() == []
    assert db.slow_queries() == []
    envelope = json.loads(db.export_traces())
    assert envelope == {
        "schema": TRACE_SCHEMA,
        "trace_count": 0,
        "traces_dropped": 0,
        "traces": [],
    }
    result = db.execute("SHOW STATS")
    assert [c.name for c in result.columns] == ["metric", "labels", "value"]
    assert result.rows == []


def test_slow_query_ms_implies_telemetry():
    db = Database(slow_query_ms=100.0)
    assert db.telemetry is not None
    assert db.telemetry.slow_query_ms == 100.0


def test_prebuilt_telemetry_instance_conflict():
    with pytest.raises(ValueError):
        Database(telemetry=Telemetry(), slow_query_ms=1.0)


def test_queries_total_by_kind_and_strategy():
    db = Database(telemetry=True)
    db.execute("CREATE TABLE t (x INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (2), (3)")
    db.execute("SELECT x FROM t")
    db.execute("SELECT COUNT(*) FROM t")
    tele = db.telemetry
    assert tele.queries_total.value(kind="create_table", strategy="none") == 1
    assert tele.queries_total.value(kind="insert", strategy="none") == 1
    assert tele.queries_total.value(kind="select", strategy="interpreter") == 2
    assert tele.query_duration_ms.count(kind="select") == 2
    # Three rows from the first select, one from the count.
    assert tele.rows_returned_total.value() == 4


def test_metrics_text_non_empty_and_parses():
    db = make_db(telemetry=True)
    db.execute("SELECT * FROM Orders")
    text = db.metrics_text()
    assert "queries_total" in text
    assert 'query_duration_ms_bucket{kind="select", le="+Inf"} 1' in text
    assert "# TYPE query_duration_ms histogram" in text


def test_events_capture_query_lifecycle():
    db = make_db(telemetry=True)
    db.execute("SELECT * FROM Orders WHERE revenue > 8")
    events = db.events()
    query_events = [e for e in events if e["event"] == "query"]
    assert query_events, events
    last = query_events[-1]
    assert last["kind"] == "select"
    assert last["strategy"] == "interpreter"
    assert last["rows"] == 3
    assert "execute" in last["phases"]
    assert "revenue > 8" in last["sql"]


def test_error_path_counts_and_logs():
    db = make_db(telemetry=True)
    with pytest.raises(SqlError):
        db.execute("SELECT nope FROM Orders")
    tele = db.telemetry
    assert tele.errors_total.total() == 1
    error_events = [e for e in db.events() if e["event"] == "error"]
    assert len(error_events) == 1
    assert "nope" in error_events[0]["message"]
    # The failed statement is not counted as a completed query.
    assert tele.queries_total.value(kind="select", strategy="interpreter") == 0


def test_parse_error_is_recorded():
    db = Database(telemetry=True)
    with pytest.raises(SqlError):
        db.execute("SELEKT 1")
    assert db.telemetry.errors_total.total() == 1


def test_slow_query_log_captures_profile():
    db = make_db(slow_query_ms=0.0)  # everything is slow
    db.execute("SELECT * FROM Orders")
    entries = db.slow_queries()
    assert entries
    entry = entries[-1]
    assert "Orders" in entry["sql"]
    assert entry["duration_ms"] >= 0.0
    assert entry["profile"]["schema_version"] == 1
    assert entry["profile"]["result_rows"] == 5
    assert db.telemetry.slow_queries_total.value() >= 1
    assert any(e["event"] == "slow_query" for e in db.events())


def test_trace_export_roundtrip_from_database():
    db = make_db(telemetry=True)
    db.execute("SELECT COUNT(*) FROM Orders")
    export = json.loads(db.export_traces(indent=2))
    assert export["schema"] == TRACE_SCHEMA
    assert export["trace_count"] >= 1
    trace = export["traces"][-1]
    assert "COUNT(*)" in trace["sql"]
    assert trace["spans_dropped"] == 0
    names = {s["name"] for s in trace["spans"]}
    assert "execute" in names


def test_show_stats_reflects_registry():
    db = make_db(telemetry=True)
    db.execute("SELECT 1")
    result = db.execute("SHOW STATS")
    assert [c.name for c in result.columns] == ["metric", "labels", "value"]
    by_metric = {}
    for metric, labels, value in result.rows:
        by_metric.setdefault(metric, []).append((labels, value))
    assert ("kind=select, strategy=interpreter", 1.0) in by_metric[
        "queries_total"
    ]
    # SHOW STATS itself is recorded as a utility statement (as of *before*
    # it ran, so the first one shows no show_stats sample yet).
    result = db.execute("SHOW STATS")
    assert ("kind=show_stats, strategy=none", 1.0) in {
        (r[1], r[2]) for r in result.rows if r[0] == "queries_total"
    }


def test_explain_show_stats_is_an_error():
    db = Database(telemetry=True)
    with pytest.raises(SqlError, match="SHOW STATS"):
        db.execute("EXPLAIN SHOW STATS")


def test_show_stats_parses_prints_and_lints():
    assert to_sql(parse_statement("SHOW STATS")) == "SHOW STATS"
    db = Database()
    assert db.lint("SHOW STATS") == []
    nested = [d.code for d in db.lint("CREATE VIEW v AS SHOW STATS")]
    assert "RP112" in nested


def test_nested_show_stats_binder_error():
    db = Database(telemetry=True)
    with pytest.raises(SqlError, match="RP112"):
        db.execute("CREATE VIEW v AS SHOW STATS")


def test_lint_feeds_diagnostics_counter():
    db = make_db(telemetry=True)
    codes = [d.code for d in db.lint("SELECT nope FROM Orders")]
    assert "RP002" in codes
    assert db.telemetry.lint_diagnostics_total.value(rule="RP002") >= 1
    assert any(e["event"] == "lint" for e in db.events())


# -- matview counters ---------------------------------------------------------


MATVIEW_DDL = """CREATE MATERIALIZED VIEW prod_rev AS
    SELECT prodName, SUM(revenue) AS rev FROM Orders GROUP BY prodName"""


def test_matview_counters_match_summary_stats():
    db = make_db(telemetry=True)
    db.execute(MATVIEW_DDL)
    db.execute("SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName")
    db.execute("SELECT custName, SUM(revenue) FROM Orders GROUP BY custName")
    tele = db.telemetry
    stats = db.summary_stats()["prod_rev"]
    assert stats["hits"] == 1
    assert tele.matview_hits_total.value(view="prod_rev") == stats["hits"]
    misses = sum(
        value
        for _, value in tele.matview_misses_total.samples()
    )
    assert misses == stats["rejects"] + stats["stale_skips"]
    hit_query = [e for e in db.events() if e.get("strategy") == "summary"]
    assert len(hit_query) == 1
    assert hit_query[0]["summary"][0]["view"] == "prod_rev"


def test_stale_skip_counts_as_miss():
    db = make_db(telemetry=True)
    db.execute(MATVIEW_DDL)
    db.execute("UPDATE Orders SET revenue = revenue + 1 WHERE prodName = 'A'")
    db.execute("SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName")
    tele = db.telemetry
    assert tele.matview_misses_total.value(view="prod_rev", status="stale") == 1
    assert tele.matview_hits_total.value(view="prod_rev") == 0
    assert (
        tele.matview_maintenance_total.value(
            event="invalidation", view="prod_rev"
        )
        >= 1
    )


def test_internal_maintenance_invisible_to_query_metrics():
    db = make_db(telemetry=True)
    db.execute(MATVIEW_DDL)
    before = db.telemetry.queries_total.total()
    before_hist = db.telemetry.query_duration_ms.count(kind="select")
    db.execute("REFRESH MATERIALIZED VIEW prod_rev")
    tele = db.telemetry
    # The REFRESH statement itself is one statement; the summary
    # recomputation it runs internally is NOT a user-facing query.
    assert tele.queries_total.total() == before + 1
    assert tele.query_duration_ms.count(kind="select") == before_hist
    assert tele.queries_total.value(
        kind="refresh_materialized_view", strategy="none"
    ) == 1
    assert tele.internal_queries_total.value() >= 1
    assert tele.matview_maintenance_total.value(
        event="refresh", view="prod_rev"
    ) == 1


# -- spans_dropped surfacing --------------------------------------------------


def test_spans_dropped_recorded_and_surfaced():
    profiler = Profiler(max_spans=4)
    with profiler.phase("execute"):
        for i in range(10):
            with profiler.tracer.span(f"s{i}", "operator"):
                pass
    profile = profiler.finish(sql="SELECT 1", result_rows=0)
    assert profile.spans_dropped > 0
    assert profile.to_dict()["spans_dropped"] == profile.spans_dropped
    assert any(
        "spans dropped" in line for line in profile.summary_lines()
    )

    tele = Telemetry()
    tele.record_query("select", profile, rows=0, sql="SELECT 1")
    assert tele.spans_dropped_total.value() == profile.spans_dropped
    trace = tele.export_traces()["traces"][0]
    assert trace["spans_dropped"] == profile.spans_dropped
    event = tele.events.tail()[-1]
    assert event["spans_dropped"] == profile.spans_dropped


# -- expansion / winmagic feeds ----------------------------------------------


def test_expansion_counter():
    db = make_db(telemetry=True)
    db.expand(
        """SELECT prodName, AGGREGATE(rev) FROM
           (SELECT *, SUM(revenue) AS MEASURE rev FROM Orders)
           GROUP BY prodName"""
    )
    assert db.telemetry.expansions_total.value(strategy="subquery") == 1


def test_winmagic_counter_by_outcome():
    from repro.core.winmagic import winmagic_rewrite
    from repro.errors import UnsupportedError
    from repro.sql import ast

    db = make_db(telemetry=True)
    supported = parse_statement(
        """SELECT o.prodName FROM Orders AS o
           WHERE o.revenue > (SELECT AVG(i.revenue) FROM Orders AS i
                              WHERE i.prodName = o.prodName)"""
    )
    assert isinstance(supported, ast.QueryStatement)
    winmagic_rewrite(db, supported.query)
    assert db.telemetry.winmagic_total.value(outcome="rewritten") == 1

    unsupported = parse_statement("SELECT COUNT(*) FROM Orders GROUP BY prodName")
    assert isinstance(unsupported, ast.QueryStatement)
    with pytest.raises(UnsupportedError):
        winmagic_rewrite(db, unsupported.query)
    assert db.telemetry.winmagic_total.value(outcome="unsupported") == 1


# -- shell commands -----------------------------------------------------------


@pytest.fixture
def tele_shell():
    out = io.StringIO()
    db = make_db(telemetry=True, slow_query_ms=0.0)
    return Shell(db, out=out), out


def test_shell_stats(tele_shell):
    sh, out = tele_shell
    sh.handle_line("SELECT 1;")
    sh.handle_line("\\stats")
    assert "queries_total" in out.getvalue()


def test_shell_stats_off():
    out = io.StringIO()
    sh = Shell(Database(), out=out)
    sh.handle_line("\\stats")
    assert "telemetry is off" in out.getvalue()


def test_shell_events(tele_shell):
    sh, out = tele_shell
    sh.handle_line("SELECT 1;")
    sh.handle_line("\\events 5")
    lines = [l for l in out.getvalue().splitlines() if l.startswith("{")]
    assert lines
    assert json.loads(lines[-1])["event"] in {"query", "slow_query"}


def test_shell_slowlog(tele_shell):
    sh, out = tele_shell
    sh.handle_line("SELECT * FROM Orders;")
    sh.handle_line("\\slowlog")
    assert "Orders" in out.getvalue()


def test_shell_stat_statements(tele_shell):
    sh, out = tele_shell
    sh.handle_line("SELECT * FROM Orders;")
    sh.handle_line("\\stat_statements")
    text = out.getvalue()
    assert "fingerprint" in text
    assert "SELECT * FROM Orders" in text


def test_shell_stat_statements_off():
    out = io.StringIO()
    sh = Shell(Database(), out=out)
    sh.handle_line("\\stat_statements")
    assert "telemetry is off" in out.getvalue()


def test_shell_flips_empty(tele_shell):
    sh, out = tele_shell
    sh.handle_line("SELECT 1;")
    sh.handle_line("\\flips")
    assert "no plan flips" in out.getvalue()


def test_shell_telemetry_toggle():
    out = io.StringIO()
    sh = Shell(Database(), out=out)
    sh.handle_line("\\telemetry")
    assert sh.db.telemetry is not None
    sh.handle_line("\\telemetry")
    assert sh.db.telemetry is None
    assert "telemetry on" in out.getvalue()
    assert "telemetry off" in out.getvalue()


# -- bench regression gate ----------------------------------------------------


def snapshot_payload(listings: dict) -> dict:
    return {
        "schema": "repro-bench-v1",
        "generated": "2026-08-06T00:00:00+00:00",
        "listings": listings,
    }


def write_snapshot(tmp_path, name: str, listings: dict) -> str:
    path = tmp_path / name
    path.write_text(json.dumps(snapshot_payload(listings)))
    return str(path)


def test_compare_identical_snapshots_pass(tmp_path):
    from benchmarks.report import compare_snapshots

    listings = {"e1": {"wall_ms": 1.0, "rows": 3}, "e2": {"wall_ms": 4.0, "rows": 1}}
    old = write_snapshot(tmp_path, "old.json", listings)
    new = write_snapshot(tmp_path, "new.json", listings)
    out = io.StringIO()
    assert compare_snapshots(old, new, out=out) == 0
    assert "ok" in out.getvalue()


def test_compare_regression_fails(tmp_path):
    from benchmarks.report import compare_snapshots

    old = write_snapshot(tmp_path, "old.json", {"e1": {"wall_ms": 5.0, "rows": 3}})
    new = write_snapshot(tmp_path, "new.json", {"e1": {"wall_ms": 50.0, "rows": 3}})
    out = io.StringIO()
    assert compare_snapshots(old, new, out=out) == 1
    assert "REGRESSION" in out.getvalue()


def test_compare_noise_within_threshold_passes(tmp_path):
    from benchmarks.report import compare_snapshots

    # +40% but under both the 50% relative and the 2ms absolute floor.
    old = write_snapshot(tmp_path, "old.json", {"e1": {"wall_ms": 1.0, "rows": 3}})
    new = write_snapshot(tmp_path, "new.json", {"e1": {"wall_ms": 1.4, "rows": 3}})
    assert compare_snapshots(old, new, out=io.StringIO()) == 0


def test_compare_small_absolute_regression_passes(tmp_path):
    from benchmarks.report import compare_snapshots

    # 3x relative growth but only +1ms absolute: below the 2ms floor.
    old = write_snapshot(tmp_path, "old.json", {"e1": {"wall_ms": 0.5, "rows": 3}})
    new = write_snapshot(tmp_path, "new.json", {"e1": {"wall_ms": 1.5, "rows": 3}})
    assert compare_snapshots(old, new, out=io.StringIO()) == 0


def test_compare_rows_changed_fails(tmp_path):
    from benchmarks.report import compare_snapshots

    old = write_snapshot(tmp_path, "old.json", {"e1": {"wall_ms": 1.0, "rows": 3}})
    new = write_snapshot(tmp_path, "new.json", {"e1": {"wall_ms": 1.0, "rows": 4}})
    out = io.StringIO()
    assert compare_snapshots(old, new, out=out) == 1
    assert "ROWS CHANGED" in out.getvalue()


def test_compare_removed_listing_fails_added_passes(tmp_path):
    from benchmarks.report import compare_snapshots

    old = write_snapshot(
        tmp_path, "old.json", {"e1": {"wall_ms": 1.0, "rows": 3}}
    )
    new = write_snapshot(
        tmp_path,
        "new.json",
        {"e2": {"wall_ms": 1.0, "rows": 3}},
    )
    out = io.StringIO()
    assert compare_snapshots(old, new, out=out) == 1
    text = out.getvalue()
    assert "REMOVED" in text
    assert "added" in text


def test_compare_rejects_wrong_schema(tmp_path):
    from benchmarks.report import compare_snapshots

    good = write_snapshot(tmp_path, "old.json", {})
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other-v9", "listings": {}}))
    with pytest.raises(SystemExit):
        compare_snapshots(good, str(bad), out=io.StringIO())


def test_compare_missing_snapshot_exits_with_one_line_error(tmp_path):
    from benchmarks.report import compare_snapshots

    good = write_snapshot(tmp_path, "old.json", {})
    missing = tmp_path / "nope.json"
    with pytest.raises(SystemExit) as exc_info:
        compare_snapshots(good, str(missing), out=io.StringIO())
    message = str(exc_info.value)
    assert "snapshot file not found" in message
    assert "\n" not in message
    assert "Traceback" not in message


def test_compare_malformed_snapshot_exits_with_one_line_error(tmp_path):
    from benchmarks.report import compare_snapshots

    good = write_snapshot(tmp_path, "old.json", {})
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(SystemExit) as exc_info:
        compare_snapshots(good, str(bad), out=io.StringIO())
    message = str(exc_info.value)
    assert "not valid JSON" in message
    assert "\n" not in message


def test_compare_wrong_schema_message_names_both_schemas(tmp_path):
    from benchmarks.report import compare_snapshots

    good = write_snapshot(tmp_path, "old.json", {})
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": "other-v9", "listings": {}}))
    with pytest.raises(SystemExit) as exc_info:
        compare_snapshots(good, str(bad), out=io.StringIO())
    message = str(exc_info.value)
    assert "repro-bench-v1" in message
    assert "other-v9" in message
    assert "\n" not in message


def test_committed_baseline_compares_clean_against_itself():
    from benchmarks.report import compare_snapshots

    baseline = "benchmarks/BENCH_2026-08-06.json"
    assert compare_snapshots(baseline, baseline, out=io.StringIO()) == 0


def tpch_section(queries: dict) -> dict:
    return {"sf": 0.01, "cardinalities": {"lineitem": 60175}, "queries": queries}


def test_compare_section_only_in_new_is_skipped_not_failed(tmp_path):
    """A baseline from before the tpch section existed must stay usable."""
    from benchmarks.report import compare_snapshots

    listings = {"e1": {"wall_ms": 1.0, "rows": 3}}
    old = write_snapshot(tmp_path, "old.json", listings)
    new_payload = snapshot_payload(listings)
    new_payload["tpch"] = tpch_section(
        {"revenue_by_region": {"rows": 5, "cold_ms": 100.0, "matview_hit_ms": 1.0}}
    )
    new = tmp_path / "new.json"
    new.write_text(json.dumps(new_payload))
    out = io.StringIO()
    assert compare_snapshots(old, str(new), out=out) == 0
    text = out.getvalue()
    assert "only in" in text and "skipped" in text
    assert "No regressions." in text


def test_compare_section_only_in_old_is_skipped_not_failed(tmp_path):
    from benchmarks.report import compare_snapshots

    listings = {"e1": {"wall_ms": 1.0, "rows": 3}}
    old_payload = snapshot_payload(listings)
    old_payload["tpch"] = tpch_section(
        {"revenue_by_region": {"rows": 5, "cold_ms": 100.0}}
    )
    old = tmp_path / "old.json"
    old.write_text(json.dumps(old_payload))
    new = write_snapshot(tmp_path, "new.json", listings)
    out = io.StringIO()
    assert compare_snapshots(str(old), new, out=out) == 0
    assert "skipped" in out.getvalue()


def test_compare_shared_listings_regression_still_caught_with_mixed_schema(tmp_path):
    """The skipped-section rule must not mask regressions in shared sections."""
    from benchmarks.report import compare_snapshots

    old = write_snapshot(tmp_path, "old.json", {"e1": {"wall_ms": 5.0, "rows": 3}})
    new_payload = snapshot_payload({"e1": {"wall_ms": 50.0, "rows": 3}})
    new_payload["tpch"] = tpch_section(
        {"revenue_by_region": {"rows": 5, "cold_ms": 100.0}}
    )
    new = tmp_path / "new.json"
    new.write_text(json.dumps(new_payload))
    out = io.StringIO()
    assert compare_snapshots(old, str(new), out=out) == 1
    assert "REGRESSION" in out.getvalue()


def test_compare_gates_tpch_when_both_sides_have_it(tmp_path):
    from benchmarks.report import compare_snapshots

    listings = {"e1": {"wall_ms": 1.0, "rows": 3}}
    old_payload = snapshot_payload(listings)
    old_payload["tpch"] = tpch_section(
        {"revenue_by_region": {"rows": 5, "cold_ms": 100.0, "matview_hit_ms": 1.0}}
    )
    new_payload = snapshot_payload(listings)
    new_payload["tpch"] = tpch_section(
        {"revenue_by_region": {"rows": 5, "cold_ms": 500.0, "matview_hit_ms": 1.0}}
    )
    old = tmp_path / "old.json"
    old.write_text(json.dumps(old_payload))
    new = tmp_path / "new.json"
    new.write_text(json.dumps(new_payload))
    out = io.StringIO()
    assert compare_snapshots(str(old), str(new), out=out) == 1
    text = out.getvalue()
    assert "tpch/revenue_by_region:cold" in text
    # The unregressed matview-hit series stays green.
    assert "REGRESSION" in text


def test_compare_tpch_rows_changed_fails(tmp_path):
    from benchmarks.report import compare_snapshots

    listings = {"e1": {"wall_ms": 1.0, "rows": 3}}
    old_payload = snapshot_payload(listings)
    old_payload["tpch"] = tpch_section(
        {"orders_by_year": {"rows": 7, "cold_ms": 10.0}}
    )
    new_payload = snapshot_payload(listings)
    new_payload["tpch"] = tpch_section(
        {"orders_by_year": {"rows": 8, "cold_ms": 10.0}}
    )
    old = tmp_path / "old.json"
    old.write_text(json.dumps(old_payload))
    new = tmp_path / "new.json"
    new.write_text(json.dumps(new_payload))
    out = io.StringIO()
    assert compare_snapshots(str(old), str(new), out=out) == 1
    assert "ROWS CHANGED" in out.getvalue()


# -- snapshot provenance (meta section) --------------------------------------


def test_snapshot_meta_shape():
    """snapshot_meta() carries provenance: commit, python, platform, date."""
    import platform as platform_mod

    from benchmarks.report import snapshot_meta

    meta = snapshot_meta()
    assert set(meta) == {"git_commit", "python", "platform", "schema_date"}
    assert meta["python"] == platform_mod.python_version()
    assert meta["platform"] == platform_mod.platform()
    # Inside this repo's checkout the commit resolves to a 40-char sha;
    # outside git it is None — both are valid provenance.
    assert meta["git_commit"] is None or (
        isinstance(meta["git_commit"], str) and len(meta["git_commit"]) == 40
    )
    assert len(meta["schema_date"]) == 10  # YYYY-MM-DD


def test_compare_ignores_meta_and_tolerates_snapshots_lacking_it(tmp_path):
    """--compare never reads meta: a new snapshot that carries one gates
    cleanly against the committed baseline that predates the section."""
    from benchmarks.report import compare_snapshots, snapshot_meta

    baseline = "benchmarks/BENCH_2026-08-07.json"
    with open(baseline) as handle:
        payload = json.load(handle)
    assert "meta" not in payload  # the committed baseline predates meta
    payload["meta"] = snapshot_meta()
    new = tmp_path / "fresh.json"
    new.write_text(json.dumps(payload, default=str))
    out = io.StringIO()
    assert compare_snapshots(baseline, str(new), out=out) == 0
    assert "git_commit" not in out.getvalue()


def test_compare_meta_only_difference_is_invisible(tmp_path):
    """Two snapshots differing only in meta (different commits) are equal."""
    from benchmarks.report import compare_snapshots

    listings = {"e1": {"wall_ms": 1.0, "rows": 3}}
    old_payload = snapshot_payload(listings)
    old_payload["meta"] = {
        "git_commit": "a" * 40,
        "python": "3.10.0",
        "platform": "old-box",
        "schema_date": "2026-01-01",
    }
    new_payload = snapshot_payload(listings)
    new_payload["meta"] = {
        "git_commit": "b" * 40,
        "python": "3.12.0",
        "platform": "new-box",
        "schema_date": "2026-08-07",
    }
    old = tmp_path / "old.json"
    old.write_text(json.dumps(old_payload))
    new = tmp_path / "new.json"
    new.write_text(json.dumps(new_payload))
    out = io.StringIO()
    assert compare_snapshots(str(old), str(new), out=out) == 0
