"""Measure expansion to plain SQL (paper section 4.2) and its equivalence
with the top-down interpreter."""

from __future__ import annotations

import pytest

from repro import Database, UnsupportedError
from repro.workloads.generator import WorkloadConfig, workload_database


@pytest.fixture
def edb(paper_db: Database) -> Database:
    paper_db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, custName, YEAR(orderDate) AS orderYear,
                  SUM(revenue) AS MEASURE rev,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
           FROM Orders"""
    )
    return paper_db


EQUIVALENCE_QUERIES = [
    # (id, sql)
    (
        "group-by-aggregate",
        "SELECT prodName, AGGREGATE(rev) AS r FROM eo GROUP BY prodName ORDER BY prodName",
    ),
    (
        "global-aggregate",
        "SELECT AGGREGATE(rev) FROM eo",
    ),
    (
        "bare-measure-ignores-where",
        """SELECT prodName, rev AS r FROM eo WHERE custName = 'Alice'
           GROUP BY prodName ORDER BY prodName""",
    ),
    (
        "visible-where",
        """SELECT prodName, rev AT (VISIBLE) AS r FROM eo WHERE custName <> 'Bob'
           GROUP BY prodName ORDER BY prodName""",
    ),
    (
        "all-proportion",
        """SELECT prodName, rev / rev AT (ALL prodName) AS share FROM eo
           GROUP BY prodName ORDER BY prodName""",
    ),
    (
        "all-clears-everything",
        "SELECT prodName, rev AT (ALL) AS total FROM eo GROUP BY prodName ORDER BY prodName",
    ),
    (
        "set-constant",
        """SELECT prodName, rev AT (SET custName = 'Bob') AS bob FROM eo
           GROUP BY prodName ORDER BY prodName""",
    ),
    (
        "set-current-arithmetic",
        """SELECT orderYear, rev AT (SET orderYear = CURRENT orderYear - 1) AS prev
           FROM eo GROUP BY orderYear ORDER BY orderYear""",
    ),
    (
        "where-modifier",
        """SELECT prodName, rev AT (WHERE orderYear = 2023) AS y23 FROM eo
           GROUP BY prodName ORDER BY prodName""",
    ),
    (
        "where-modifier-correlated",
        """SELECT prodName, rev AT (WHERE prodName = eo.prodName AND orderYear = 2023) AS v
           FROM eo GROUP BY prodName ORDER BY prodName""",
    ),
    (
        "row-grain-in-where",
        """SELECT prodName, custName FROM eo
           WHERE rev AT (WHERE prodName = eo.prodName) > 5
           ORDER BY prodName, custName""",
    ),
    (
        "multiple-measures",
        """SELECT prodName, AGGREGATE(rev) AS r, AGGREGATE(margin) AS m
           FROM eo GROUP BY prodName ORDER BY prodName""",
    ),
    (
        "having-on-measure",
        """SELECT prodName FROM eo GROUP BY prodName
           HAVING AGGREGATE(margin) > 0.5 ORDER BY prodName""",
    ),
    (
        "adhoc-group-dimension",
        """SELECT prodName, YEAR(orderDate) AS y, AGGREGATE(rev) AS r FROM
           (SELECT prodName, orderDate, SUM(revenue) AS MEASURE rev FROM Orders)
           GROUP BY prodName, YEAR(orderDate) ORDER BY prodName, y""",
    ),
]


@pytest.mark.parametrize(
    "sql", [q for _, q in EQUIVALENCE_QUERIES], ids=[i for i, _ in EQUIVALENCE_QUERIES]
)
def test_expansion_equivalence(edb, sql):
    """The static rewrite and the interpreter agree on every query shape."""
    expanded = edb.expand(sql)
    assert "AGGREGATE(" not in expanded
    assert " AT " not in expanded
    interpreted = edb.execute(sql).rows
    rewritten = edb.execute(expanded).rows

    def normalize(rows):
        return [
            tuple(round(v, 9) if isinstance(v, float) else v for v in row)
            for row in rows
        ]

    assert normalize(rewritten) == normalize(interpreted)


def test_expanded_sql_is_reparseable(edb):
    sql = "SELECT prodName, AGGREGATE(rev) FROM eo GROUP BY prodName"
    from repro.sql import parse_statement, to_sql

    expanded = edb.expand(sql)
    assert to_sql(parse_statement(expanded))


def test_explain_expand_statement(edb):
    result = edb.execute(
        "EXPLAIN EXPAND SELECT prodName, AGGREGATE(rev) FROM eo GROUP BY prodName"
    )
    assert result.column_names == ["expanded_sql"]
    assert "IS NOT DISTINCT FROM" in result.scalar()


def test_expansion_of_query_without_measures_is_identity_modulo_syntax(edb):
    sql = "SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName ORDER BY prodName"
    assert edb.execute(edb.expand(sql)).rows == edb.execute(sql).rows


def test_expansion_strips_view_to_listing5_shape(edb):
    expanded = edb.expand("SELECT prodName, AGGREGATE(rev) FROM eo GROUP BY prodName")
    # The measure table is replaced by its measure-free projection...
    assert "AS MEASURE" not in expanded
    # ...and the measure by a correlated scalar subquery over Orders.
    assert expanded.count("FROM Orders") >= 1


def test_expansion_inlines_sibling_measures(paper_db):
    paper_db.execute(
        """CREATE VIEW sib AS
           SELECT prodName,
                  SUM(revenue) AS MEASURE a,
                  a * 2 AS MEASURE b
           FROM Orders"""
    )
    sql = "SELECT prodName, AGGREGATE(b) AS bb FROM sib GROUP BY prodName ORDER BY prodName"
    expanded = paper_db.expand(sql)
    assert paper_db.execute(expanded).rows == paper_db.execute(sql).rows


def test_expansion_with_view_over_view(paper_db):
    paper_db.execute("CREATE VIEW base AS SELECT * FROM Orders WHERE revenue > 3")
    paper_db.execute(
        "CREATE VIEW em AS SELECT prodName, SUM(revenue) AS MEASURE r FROM base"
    )
    sql = "SELECT prodName, AGGREGATE(r) FROM em GROUP BY prodName ORDER BY prodName"
    assert paper_db.execute(paper_db.expand(sql)).rows == paper_db.execute(sql).rows


def test_expansion_baked_where(paper_db):
    paper_db.execute(
        """CREATE VIEW alice AS
           SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders
           WHERE custName = 'Alice'"""
    )
    sql = "SELECT prodName, r AT (ALL) AS t FROM alice GROUP BY prodName"
    expanded = paper_db.expand(sql)
    assert "Alice" in expanded  # the defining WHERE travels into the subquery
    assert paper_db.execute(expanded).rows == paper_db.execute(sql).rows


def test_expansion_visible_across_join_unsupported(paper_db):
    paper_db.execute(
        "CREATE VIEW ec AS SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers"
    )
    with pytest.raises(UnsupportedError):
        paper_db.expand(
            """SELECT o.prodName, AGGREGATE(c.avgAge)
               FROM Orders AS o JOIN ec AS c USING (custName)
               WHERE c.custAge >= 18 GROUP BY o.prodName"""
        )


def test_expansion_composed_measure_unsupported(edb):
    with pytest.raises(UnsupportedError):
        edb.expand(
            """SELECT prodName, AGGREGATE(m2) FROM
               (SELECT prodName, AGGREGATE(rev) AS MEASURE m2 FROM eo)
               GROUP BY prodName"""
        )


def test_expansion_equivalence_on_synthetic_workload():
    """Interpreter vs expansion on a few hundred synthetic orders."""
    db = workload_database(WorkloadConfig(orders=300, products=10, customers=20))
    db.execute(
        """CREATE VIEW em AS
           SELECT prodName, custName, YEAR(orderDate) AS y,
                  SUM(revenue) AS MEASURE r FROM Orders"""
    )
    sql = """SELECT prodName, y, AGGREGATE(r) AS r,
                    r AT (SET y = CURRENT y - 1) AS prev,
                    r / r AT (ALL prodName, y) AS share
             FROM em GROUP BY prodName, y ORDER BY prodName, y"""
    interpreted = db.execute(sql).rows
    rewritten = db.execute(db.expand(sql)).rows
    assert interpreted == rewritten
