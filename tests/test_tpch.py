"""The TPC-H workload: generator determinism, .tbl interchange, the measure
layer, and summary-table hits (docs/WORKLOADS.md)."""

import subprocess
import sys

import pytest

from repro import Database
from repro.workloads.tpch import (
    TPCH_QUERIES,
    TPCH_SUMMARIES,
    TPCH_TABLES,
    TpchConfig,
    generate_tpch,
    load_tbl_dir,
    load_tpch,
    read_tbl,
    table_cardinalities,
    table_digest,
    tpch_database,
    tpch_measure_database,
    tpch_measures,
    write_tbl_dir,
)

CONFIG = TpchConfig(sf=0.001)


@pytest.fixture(scope="module")
def tables():
    return generate_tpch(CONFIG)


@pytest.fixture(scope="module")
def sales_db():
    return tpch_measure_database(0.001)


# -- generator shape and integrity -------------------------------------------


def test_all_eight_tables_present_with_declared_schema(tables):
    assert set(tables) == set(TPCH_TABLES)
    for name, columns in TPCH_TABLES.items():
        for row in tables[name][:5]:
            assert len(row) == len(columns), name


def test_cardinalities_match_targets(tables):
    counts = table_cardinalities(CONFIG.sf)
    for name in ("region", "nation", "supplier", "part", "partsupp", "customer", "orders"):
        assert len(tables[name]) == counts[name], name
    # lineitem is drawn per order (1-7 lines), only approximately 4x orders.
    n_orders = counts["orders"]
    assert n_orders < len(tables["lineitem"]) < 7 * n_orders


def test_cardinalities_scale_with_sf():
    small = table_cardinalities(0.001)
    large = table_cardinalities(0.01)
    assert large["orders"] > small["orders"]
    assert table_cardinalities(0.01)["orders"] == 15_000
    assert table_cardinalities(0.01)["customer"] == 1_500


def test_foreign_key_integrity(tables):
    region_keys = {r[0] for r in tables["region"]}
    nation_keys = {r[0] for r in tables["nation"]}
    supplier_keys = {r[0] for r in tables["supplier"]}
    part_keys = {r[0] for r in tables["part"]}
    customer_keys = {r[0] for r in tables["customer"]}
    order_keys = {r[0] for r in tables["orders"]}
    partsupp_pairs = {(r[0], r[1]) for r in tables["partsupp"]}

    assert all(r[2] in region_keys for r in tables["nation"])
    assert all(r[3] in nation_keys for r in tables["supplier"])
    assert all(r[3] in nation_keys for r in tables["customer"])
    assert all(r[0] in part_keys and r[1] in supplier_keys for r in tables["partsupp"])
    assert all(r[1] in customer_keys for r in tables["orders"])
    for row in tables["lineitem"]:
        assert row[0] in order_keys
        assert (row[1], row[2]) in partsupp_pairs


def test_each_part_has_four_distinct_suppliers(tables):
    by_part = {}
    for partkey, suppkey, *_ in tables["partsupp"]:
        by_part.setdefault(partkey, set()).add(suppkey)
    assert all(len(supps) == 4 for supps in by_part.values())


def test_order_totalprice_is_sum_of_line_charges(tables):
    lines_by_order = {}
    for row in tables["lineitem"]:
        lines_by_order.setdefault(row[0], []).append(row)
    for orderkey, _, _, totalprice, *_ in tables["orders"][:200]:
        expected = round(
            sum(
                round(row[5] * (1 + row[7]) * (1 - row[6]), 2)
                for row in lines_by_order[orderkey]
            ),
            2,
        )
        assert totalprice == expected


# -- determinism --------------------------------------------------------------


def test_same_config_generates_identical_tables(tables):
    assert generate_tpch(TpchConfig(sf=0.001)) == tables


def test_different_seed_generates_different_tables(tables):
    other = generate_tpch(TpchConfig(sf=0.001, seed=7))
    assert other["orders"] != tables["orders"]


def test_digest_is_byte_identical_across_processes(tables):
    """The committed-baseline guarantee: a fresh interpreter reproduces the
    exact same bytes for the same (seed, sf)."""
    script = (
        "from repro.workloads.tpch import TpchConfig, generate_tpch, table_digest;"
        "print(table_digest(generate_tpch(TpchConfig(sf=0.001))))"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=".",
    )
    assert proc.stdout.strip() == table_digest(tables)


# -- .tbl interchange ---------------------------------------------------------


def test_tbl_round_trip(tmp_path, tables):
    written = write_tbl_dir(tables, tmp_path)
    assert set(written) == set(TPCH_TABLES)
    for name in TPCH_TABLES:
        assert read_tbl(written[name], name) == tables[name], name


def test_load_tbl_dir_matches_generated_load(tmp_path, tables):
    write_tbl_dir(tables, tmp_path)
    from_tbl = Database()
    counts = load_tbl_dir(from_tbl, tmp_path)
    generated = Database()
    assert counts == load_tpch(generated, CONFIG)
    for name in TPCH_TABLES:
        sql = f"SELECT * FROM {name}"
        assert from_tbl.execute(sql).rows == generated.execute(sql).rows, name


def test_load_tbl_dir_skips_missing_files(tmp_path, tables):
    write_tbl_dir({"region": tables["region"]}, tmp_path)
    db = Database()
    counts = load_tbl_dir(db, tmp_path)
    assert counts == {"region": len(tables["region"])}


def test_read_tbl_rejects_unknown_table_and_bad_field_count(tmp_path):
    with pytest.raises(ValueError, match="unknown TPC-H table"):
        read_tbl(tmp_path / "x.tbl", "widgets")
    bad = tmp_path / "region.tbl"
    bad.write_text("0|AFRICA|\n")
    with pytest.raises(ValueError, match="expected 3 fields"):
        read_tbl(bad, "region")


# -- the measure layer --------------------------------------------------------


def test_revenue_by_region_matches_python_oracle(sales_db, tables):
    region_names = {r[0]: r[1] for r in tables["region"]}
    nation_region = {n[0]: region_names[n[2]] for n in tables["nation"]}
    cust_region = {c[0]: nation_region[c[3]] for c in tables["customer"]}
    order_region = {o[0]: cust_region[o[1]] for o in tables["orders"]}
    expected: dict[str, float] = {}
    for row in tables["lineitem"]:
        region = order_region[row[0]]
        expected[region] = expected.get(region, 0.0) + row[5] * (1 - row[6])
    result = sales_db.execute(TPCH_QUERIES["revenue_by_region"]).rows
    assert [r[0] for r in result] == sorted(expected)
    for region, revenue in result:
        assert revenue == pytest.approx(expected[region], rel=1e-9)


def test_order_count_counts_orders_not_lineitems(sales_db, tables):
    result = sales_db.execute(
        "SELECT AGGREGATE(order_count) FROM tpch_orders_m"
    ).rows
    assert result == [(len(tables["orders"]),)]


def test_margin_is_between_zero_and_one(sales_db):
    rows = sales_db.execute(TPCH_QUERIES["margin_by_returnflag"]).rows
    assert len(rows) == 3  # A, N, R
    for _, margin, avg_discount in rows:
        assert 0.0 < margin < 1.0
        assert 0.0 <= avg_discount <= 0.10


def test_revenue_share_sums_to_one(sales_db):
    rows = sales_db.execute(TPCH_QUERIES["revenue_share_by_region"]).rows
    assert sum(r[2] for r in rows) == pytest.approx(1.0)


def test_yoy_aligns_previous_year(sales_db):
    rows = sales_db.execute(TPCH_QUERIES["revenue_yoy_by_year"]).rows
    by_year = {r[0]: r[1] for r in rows}
    for year, _, prev in rows:
        if year - 1 in by_year:
            assert prev == pytest.approx(by_year[year - 1], rel=1e-9)
        else:
            assert prev is None


def test_visible_orders_exclude_filtered_segment(sales_db):
    rows = sales_db.execute(TPCH_QUERIES["visible_orders_by_region"]).rows
    totals = dict(
        sales_db.execute(
            "SELECT region, order_count FROM tpch_orders_m GROUP BY region"
        ).rows
    )
    for region, visible, base in rows:
        assert visible < totals[region]  # MACHINERY orders removed
        assert base == totals[region]  # bare measure sees the full context


def test_measures_layer_is_not_relayerable(sales_db):
    with pytest.raises(Exception):
        tpch_measures(sales_db)


# -- summary tables -----------------------------------------------------------


@pytest.fixture(scope="module")
def summary_db():
    return tpch_measure_database(0.001, summaries=True)


def test_summary_hit_is_provable_via_explain(summary_db):
    """Acceptance: at least one TPC-H measure query answers from a summary."""
    lines = [
        row[0]
        for row in summary_db.execute(
            "EXPLAIN " + TPCH_QUERIES["revenue_by_region"]
        ).rows
    ]
    assert any(
        "summary: answered from materialized view tpch_rev_by_region_year"
        in line
        for line in lines
    ), lines


def test_all_three_summaries_get_hits(summary_db):
    for name in (
        "revenue_by_region",
        "revenue_by_region_year",
        "margin_by_returnflag",
        "orders_by_year",
    ):
        summary_db.execute(TPCH_QUERIES[name])
    stats = summary_db.summary_stats()
    assert set(TPCH_SUMMARIES) <= set(stats)
    for view in TPCH_SUMMARIES:
        assert stats[view]["hits"] >= 1, (view, stats)


def test_summary_answers_match_cold_to_the_cent(summary_db, sales_db):
    for name in ("revenue_by_region", "revenue_by_region_year", "orders_by_year"):
        cold = sales_db.execute(TPCH_QUERIES[name]).rows
        hot = summary_db.execute(TPCH_QUERIES[name]).rows
        assert len(cold) == len(hot)
        for ra, rb in zip(cold, hot):
            for va, vb in zip(ra, rb):
                if isinstance(va, float):
                    assert vb == pytest.approx(va, rel=1e-9, abs=0.01)
                else:
                    assert va == vb


def test_at_queries_never_hit_summaries():
    db = tpch_measure_database(0.001, summaries=True)
    before = {
        name: view["hits"] for name, view in db.summary_stats().items()
    }
    db.execute(TPCH_QUERIES["revenue_share_by_region"])
    after = {name: view["hits"] for name, view in db.summary_stats().items()}
    assert before == after


# -- CLI ----------------------------------------------------------------------


def test_workloads_cli_tpch_smoke():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.workloads", "--tpch", "--summaries"],
        input="SELECT region, revenue FROM tpch_sales_m GROUP BY region;\n\\q\n",
        capture_output=True,
        text=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=".",
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    assert "TPC-H tables generated at SF 0.001" in proc.stdout
    assert "tpch_sales_m" in proc.stdout
    assert "AFRICA" in proc.stdout


# -- the slow tier ------------------------------------------------------------


@pytest.mark.slow
def test_sf_005_generation_and_measures():
    db = tpch_measure_database(0.05, summaries=True)
    counts = {
        name: len(db.execute(f"SELECT * FROM {name}").rows)
        for name in ("orders", "lineitem")
    }
    assert counts["orders"] == 75_000
    assert counts["lineitem"] > counts["orders"]
    rows = db.execute(TPCH_QUERIES["revenue_by_region"]).rows
    assert len(rows) == 5
