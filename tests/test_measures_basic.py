"""Measure fundamentals: definition, AGGREGATE/EVAL, closure, grain, naming."""

from __future__ import annotations

import pytest

from repro import BindError, Database, MeasureError
from repro.types import MeasureType


def test_defining_view_returns_same_row_count_as_base(orders_db):
    """The EnhancedOrders view has no GROUP BY, so it has Orders' grain."""
    assert orders_db.execute("SELECT COUNT(*) FROM EnhancedOrders").scalar() == 5


def test_measure_column_type_is_measure(orders_db):
    from repro.semantics.binder import Binder
    from repro.sql import parse_query

    binder = Binder(orders_db.catalog)
    bound = binder.bind_query_as_relation(
        parse_query("SELECT * FROM EnhancedOrders"), None
    )
    by_name = {c.name: c for c in bound.columns}
    assert isinstance(by_name["profitMargin"].dtype, MeasureType)
    assert not by_name["prodName"].dtype.is_measure


def test_aggregate_at_coarser_grain(orders_db):
    value = orders_db.execute(
        "SELECT AGGREGATE(profitMargin) FROM EnhancedOrders"
    ).scalar()
    assert value == pytest.approx((25 - 12) / 25)


def test_eval_is_explicit_spelling(orders_db):
    rows1 = orders_db.execute(
        "SELECT prodName, EVAL(profitMargin AT (VISIBLE)) FROM EnhancedOrders GROUP BY prodName ORDER BY 1"
    ).rows
    rows2 = orders_db.execute(
        "SELECT prodName, AGGREGATE(profitMargin) FROM EnhancedOrders GROUP BY prodName ORDER BY 1"
    ).rows
    assert rows1 == rows2


def test_measure_usable_without_access_to_hidden_columns(orders_db):
    """EnhancedOrders does not project revenue/cost; the measure still
    computes over them (abstraction, section 3.2)."""
    with pytest.raises(BindError):
        orders_db.execute("SELECT revenue FROM EnhancedOrders")
    value = orders_db.execute(
        "SELECT AGGREGATE(profitMargin) FROM EnhancedOrders WHERE prodName = 'Acme'"
    ).scalar()
    assert value == pytest.approx(0.6)


def test_bare_measure_in_group_query_ignores_where(paper_db):
    rows = paper_db.execute(
        """SELECT prodName, r FROM
           (SELECT *, SUM(revenue) AS MEASURE r FROM Orders)
           WHERE custName = 'Alice' GROUP BY prodName"""
    ).rows
    assert rows == [("Happy", 17)]  # 17, not Alice's 13


def test_row_grain_evaluation_at_top_level(paper_db):
    """Selecting a measure from a non-aggregate top-level query evaluates it
    at row grain (every dimension pinned)."""
    rows = paper_db.execute(
        """SELECT prodName, custName, r FROM
           (SELECT prodName, custName, SUM(revenue) AS MEASURE r FROM Orders)
           ORDER BY prodName, custName"""
    ).rows
    # Happy/Alice has two orders (6 + 7): both rows show the pinned total 13.
    assert rows == [
        ("Acme", "Bob", 5),
        ("Happy", "Alice", 13),
        ("Happy", "Alice", 13),
        ("Happy", "Bob", 4),
        ("Whizz", "Celia", 3),
    ]


def test_select_star_includes_measures_at_top_level(orders_db):
    result = orders_db.execute("SELECT * FROM EnhancedOrders LIMIT 1")
    assert result.column_names == ["orderDate", "prodName", "profitMargin"]


def test_measure_in_where_clause(paper_db):
    rows = paper_db.execute(
        """SELECT prodName, custName FROM
           (SELECT prodName, custName, SUM(revenue) AS MEASURE r FROM Orders)
           WHERE r > 5 ORDER BY prodName, custName"""
    ).rows
    assert rows == [("Happy", "Alice"), ("Happy", "Alice")]


def test_measure_in_having(orders_db):
    rows = orders_db.execute(
        """SELECT prodName FROM EnhancedOrders
           GROUP BY prodName HAVING AGGREGATE(profitMargin) > 0.5
           ORDER BY prodName"""
    ).rows
    assert rows == [("Acme",), ("Whizz",)]


def test_measure_in_order_by(orders_db):
    rows = orders_db.execute(
        """SELECT prodName FROM EnhancedOrders GROUP BY prodName
           ORDER BY AGGREGATE(profitMargin) DESC"""
    ).rows
    assert [r[0] for r in rows] == ["Whizz", "Acme", "Happy"]


def test_defining_where_is_baked_in(paper_db):
    """The WHERE in a measure-defining query cannot be subverted (3.5)."""
    paper_db.execute(
        """CREATE VIEW aliceOrders AS
           SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders
           WHERE custName = 'Alice'"""
    )
    total = paper_db.execute("SELECT r AT (ALL) FROM aliceOrders GROUP BY prodName").rows
    assert all(r == (13,) for r in total)  # never sees Bob's or Celia's orders


def test_sibling_measure_reference(paper_db):
    rows = paper_db.execute(
        """SELECT prodName, AGGREGATE(margin) FROM
           (SELECT prodName,
                   SUM(revenue) AS MEASURE rev,
                   SUM(cost) AS MEASURE cst,
                   (rev - cst) / rev AS MEASURE margin
            FROM Orders)
           GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert [(r[0], round(r[1], 2)) for r in rows] == [
        ("Acme", 0.60),
        ("Happy", 0.47),
        ("Whizz", 0.67),
    ]


def test_recursive_measure_rejected(paper_db):
    with pytest.raises(MeasureError, match="recursive"):
        paper_db.execute(
            """SELECT AGGREGATE(a) FROM
               (SELECT prodName, b + 0 AS MEASURE a, a + 0 AS MEASURE b
                FROM Orders)"""
        )


def test_duplicate_measure_name_rejected(paper_db):
    with pytest.raises(MeasureError, match="duplicate"):
        paper_db.execute(
            """SELECT 1 FROM (SELECT prodName, SUM(revenue) AS MEASURE m,
                                     SUM(cost) AS MEASURE m FROM Orders)"""
        )


def test_group_by_measure_rejected(paper_db):
    with pytest.raises(MeasureError, match="GROUP BY a measure"):
        paper_db.execute(
            """SELECT 1 FROM (SELECT prodName, SUM(revenue) AS MEASURE m FROM Orders)
               GROUP BY m"""
        )


def test_measure_defined_in_grouped_query_rejected(paper_db):
    from repro import UnsupportedError

    with pytest.raises(UnsupportedError):
        paper_db.execute(
            """SELECT prodName, SUM(revenue) AS MEASURE m FROM Orders
               GROUP BY prodName"""
        )


def test_aggregate_of_non_measure_rejected(paper_db):
    with pytest.raises(MeasureError):
        paper_db.execute("SELECT AGGREGATE(revenue) FROM Orders")


def test_at_on_non_measure_rejected(paper_db):
    with pytest.raises(MeasureError):
        paper_db.execute("SELECT revenue AT (ALL) FROM Orders")


def test_aggregate_makes_query_aggregate(orders_db):
    """AGGREGATE converts any query into an aggregate query (section 3.3)."""
    result = orders_db.execute("SELECT AGGREGATE(profitMargin) FROM EnhancedOrders")
    assert len(result.rows) == 1


def test_unaliased_aggregate_inherits_measure_name(orders_db):
    result = orders_db.execute(
        "SELECT prodName, AGGREGATE(profitMargin) FROM EnhancedOrders GROUP BY prodName"
    )
    assert result.column_names == ["prodName", "profitMargin"]


def test_view_rename_columns_applies_to_measures(paper_db):
    paper_db.execute(
        """CREATE VIEW renamed (product, pm) AS
           SELECT prodName, (SUM(revenue) - SUM(cost)) / SUM(revenue)
             AS MEASURE profitMargin
           FROM Orders"""
    )
    rows = paper_db.execute(
        "SELECT product, AGGREGATE(pm) FROM renamed GROUP BY product ORDER BY product"
    ).rows
    assert [r[0] for r in rows] == ["Acme", "Happy", "Whizz"]


def test_measure_view_over_view(orders_db):
    """Views with measures compose with plain views beneath them."""
    orders_db.execute("CREATE VIEW bigOrders AS SELECT * FROM Orders WHERE revenue >= 4")
    orders_db.execute(
        """CREATE VIEW bigEnhanced AS
           SELECT prodName, SUM(revenue) AS MEASURE r FROM bigOrders"""
    )
    rows = orders_db.execute(
        "SELECT prodName, AGGREGATE(r) FROM bigEnhanced GROUP BY prodName ORDER BY 1"
    ).rows
    assert rows == [("Acme", 5), ("Happy", 17)]  # Whizz(3) filtered out


def test_count_star_as_measure(paper_db):
    rows = paper_db.execute(
        """SELECT prodName, AGGREGATE(n) FROM
           (SELECT prodName, COUNT(*) AS MEASURE n FROM Orders)
           GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert rows == [("Acme", 1), ("Happy", 3), ("Whizz", 1)]


def test_semi_additive_last_value_measure(db):
    """Inventory-style semi-additive measure using LAST_VALUE (section 5.3)."""
    db.execute("CREATE TABLE inv (warehouse VARCHAR, day DATE, onHand INTEGER)")
    db.execute(
        """INSERT INTO inv VALUES
           ('w1', DATE '2024-01-01', 10), ('w1', DATE '2024-01-02', 12),
           ('w2', DATE '2024-01-01', 5), ('w2', DATE '2024-01-02', 7)"""
    )
    rows = db.execute(
        """SELECT warehouse, AGGREGATE(latest) FROM
           (SELECT warehouse, day,
                   LAST_VALUE(onHand ORDER BY day) AS MEASURE latest
            FROM inv)
           GROUP BY warehouse ORDER BY warehouse"""
    ).rows
    assert rows == [("w1", 12), ("w2", 7)]
