"""Differential testing against SQLite as an oracle.

Randomly generated queries from the plain-SQL subset both engines share are
executed on this engine and on the standard library's sqlite3; results must
agree as multisets.  The generator avoids the dialect's known divergences
(integer division, LIKE case folding, NULL sort position), which are covered
by targeted tests elsewhere.
"""

from __future__ import annotations

import sqlite3

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database

COLUMNS = ["k", "g", "v", "w"]


rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 4),                      # k
        st.sampled_from(["x", "y", "z"]),       # g
        st.one_of(st.none(), st.integers(-20, 20)),  # v
        st.integers(0, 9),                      # w
    ),
    min_size=0,
    max_size=25,
)


@st.composite
def scalar_expr(draw, depth=0) -> str:
    """A scalar expression both dialects evaluate identically."""
    if depth >= 2 or draw(st.booleans()):
        return draw(
            st.sampled_from(["k", "v", "w", "1", "2", "-3", "0"])
        )
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(scalar_expr(depth + 1))
    right = draw(scalar_expr(depth + 1))
    return f"({left} {op} {right})"


@st.composite
def predicate(draw, depth=0) -> str:
    if depth >= 2 or draw(st.booleans()):
        left = draw(scalar_expr())
        comparison = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        right = draw(scalar_expr())
        base = f"({left} {comparison} {right})"
        if draw(st.booleans()):
            return base
        return draw(
            st.sampled_from(
                [f"(v IS NULL)", f"(v IS NOT NULL)", base, f"(g = 'x')", f"(k IN (1, 2))"]
            )
        )
    connective = draw(st.sampled_from(["AND", "OR"]))
    return f"({draw(predicate(depth + 1))} {connective} {draw(predicate(depth + 1))})"


@st.composite
def simple_query(draw) -> str:
    where = f" WHERE {draw(predicate())}" if draw(st.booleans()) else ""
    if draw(st.booleans()):
        # Aggregate query grouped by g.
        aggs = draw(
            st.lists(
                st.sampled_from(
                    ["COUNT(*)", "COUNT(v)", "SUM(v)", "MIN(v)", "MAX(v)",
                     "SUM(w)", "MIN(w + k)", "COUNT(DISTINCT k)"]
                ),
                min_size=1,
                max_size=3,
            )
        )
        having = ""
        if draw(st.booleans()):
            having = f" HAVING COUNT(*) > {draw(st.integers(0, 2))}"
        return f"SELECT g, {', '.join(aggs)} FROM t{where} GROUP BY g{having}"
    items = draw(
        st.lists(st.one_of(scalar_expr(), st.sampled_from(["g"])), min_size=1, max_size=3)
    )
    distinct = "DISTINCT " if draw(st.booleans()) else ""
    return f"SELECT {distinct}{', '.join(items)} FROM t{where}"


def run_sqlite(rows, sql: str) -> list[tuple]:
    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE t (k INTEGER, g TEXT, v INTEGER, w INTEGER)")
    connection.executemany("INSERT INTO t VALUES (?, ?, ?, ?)", rows)
    return connection.execute(sql).fetchall()


def run_repro(rows, sql: str) -> list[tuple]:
    db = Database()
    db.create_table_from_rows(
        "t",
        [("k", "INTEGER"), ("g", "VARCHAR"), ("v", "INTEGER"), ("w", "INTEGER")],
        rows,
    )
    return db.execute(sql).rows


def canonical(rows) -> list:
    def key(row):
        return tuple((value is None, value) for value in row)

    return sorted((tuple(row) for row in rows), key=key)


@settings(max_examples=120, deadline=None)
@given(rows_strategy, simple_query())
def test_differential_against_sqlite(rows, sql):
    assert canonical(run_repro(rows, sql)) == canonical(run_sqlite(rows, sql))


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_differential_join(rows):
    sql = """SELECT a.g, b.k FROM t AS a JOIN t AS b ON a.k = b.k
             WHERE a.w > b.w"""
    assert canonical(run_repro(rows, sql)) == canonical(run_sqlite(rows, sql))


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_differential_left_join_aggregate(rows):
    sql = """SELECT a.g, COUNT(b.v) FROM t AS a
             LEFT JOIN t AS b ON a.k = b.k AND b.v IS NOT NULL
             GROUP BY a.g"""
    assert canonical(run_repro(rows, sql)) == canonical(run_sqlite(rows, sql))


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_differential_correlated_subquery(rows):
    sql = """SELECT g, v FROM t AS o
             WHERE v > (SELECT MIN(v) FROM t AS i WHERE i.g = o.g)"""
    assert canonical(run_repro(rows, sql)) == canonical(run_sqlite(rows, sql))


@settings(max_examples=60, deadline=None)
@given(rows_strategy)
def test_differential_union_except(rows):
    sql = """SELECT k FROM t WHERE g = 'x'
             UNION SELECT w FROM t WHERE g = 'y'"""
    assert canonical(run_repro(rows, sql)) == canonical(run_sqlite(rows, sql))
    sql = """SELECT k FROM t EXCEPT SELECT w FROM t"""
    assert canonical(run_repro(rows, sql)) == canonical(run_sqlite(rows, sql))


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_differential_window(rows):
    # NULLS LAST is explicit: SQLite defaults NULLs first, this engine
    # follows PostgreSQL (NULLs last ascending).
    sql = """SELECT g, v, ROW_NUMBER() OVER (PARTITION BY g ORDER BY w, k, v NULLS LAST)
             FROM t"""
    assert canonical(run_repro(rows, sql)) == canonical(run_sqlite(rows, sql))


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_differential_case_expression(rows):
    sql = """SELECT k, CASE WHEN v IS NULL THEN -1 WHEN v > 0 THEN 1 ELSE 0 END
             FROM t"""
    assert canonical(run_repro(rows, sql)) == canonical(run_sqlite(rows, sql))


# -- profiling differential: observation must not perturb results ------------


def run_repro_profiled(rows, sql: str) -> tuple[list[tuple], object]:
    db = Database(profile=True)
    db.create_table_from_rows(
        "t",
        [("k", "INTEGER"), ("g", "VARCHAR"), ("v", "INTEGER"), ("w", "INTEGER")],
        rows,
    )
    result = db.execute(sql)
    return result.rows, db.last_profile()


@settings(max_examples=80, deadline=None)
@given(rows_strategy, simple_query())
def test_differential_profile_on_off(rows, sql):
    """profile=True is pure observation: identical rows (exact order, not
    just multiset), and the profile's root cardinality matches."""
    plain = run_repro(rows, sql)
    profiled, profile = run_repro_profiled(rows, sql)
    assert profiled == plain
    assert profile is not None
    assert profile.result_rows == len(plain)
    assert profile.operator_tree["rows_out"] == len(plain)


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_differential_profile_correlated(rows):
    sql = """SELECT g, v FROM t AS o
             WHERE v > (SELECT MIN(v) FROM t AS i WHERE i.g = o.g)"""
    plain = run_repro(rows, sql)
    profiled, profile = run_repro_profiled(rows, sql)
    assert profiled == plain
    # Against the external oracle too, under profiling.
    assert canonical(profiled) == canonical(run_sqlite(rows, sql))
    assert profile.counters["subquery_executions"] >= 0


# -- telemetry differential: observation must not perturb results ------------


def run_repro_telemetered(rows, sql: str):
    db = Database(telemetry=True)
    db.create_table_from_rows(
        "t",
        [("k", "INTEGER"), ("g", "VARCHAR"), ("v", "INTEGER"), ("w", "INTEGER")],
        rows,
    )
    result = db.execute(sql)
    return result.rows, db


@settings(max_examples=80, deadline=None)
@given(rows_strategy, simple_query())
def test_differential_telemetry_on_off(rows, sql):
    """telemetry=True is pure observation: identical rows (exact order),
    and the recorded metrics agree with what actually ran."""
    plain = run_repro(rows, sql)
    observed, db = run_repro_telemetered(rows, sql)
    assert observed == plain
    tele = db.telemetry
    assert tele.queries_total.value(kind="select", strategy="interpreter") == 1
    assert tele.query_duration_ms.count(kind="select") == 1
    assert tele.rows_returned_total.value() == len(plain)
    # Against the external oracle too, under telemetry.
    assert canonical(observed) == canonical(run_sqlite(rows, sql))


# -- coercion and NULL-propagation edges --------------------------------------
#
# Targeted differential checks for the corners the dataflow analysis reasons
# about statically: strict-operator NULL propagation, BETWEEN's non-strict
# FALSE, three-valued IN, COALESCE/NULLIF, and aggregates over all-NULL input.
# The generator above avoids these shapes, so they get their own exercises.

NULL_EDGE_QUERIES = [
    # Strict operators propagate NULL...
    "SELECT k, v + NULL FROM t",
    "SELECT k, NULL * w FROM t",
    "SELECT k FROM t WHERE v = NULL",
    "SELECT k FROM t WHERE NOT (v <> NULL)",
    # ...but BETWEEN is not strict: 7 BETWEEN NULL AND 5 is FALSE, not NULL.
    "SELECT k, w BETWEEN NULL AND 5 FROM t",
    "SELECT k FROM t WHERE w BETWEEN NULL AND 5",
    # Three-valued IN: v IN (1, NULL) is NULL (not FALSE) when v <> 1.
    "SELECT k FROM t WHERE v IN (1, NULL)",
    "SELECT k FROM t WHERE v NOT IN (1, NULL)",
    # NULL-aware scalar functions.
    "SELECT k, COALESCE(v, -99), NULLIF(w, 0) FROM t",
    "SELECT k, COALESCE(NULL, NULL, v, w) FROM t",
    # CASE: a NULL condition is not TRUE.
    "SELECT k, CASE WHEN v > 0 THEN 'p' WHEN v <= 0 THEN 'n' ELSE '?' END FROM t",
    # Aggregates ignore NULLs; SUM/MIN/MAX of no non-NULL input are NULL.
    "SELECT g, SUM(v), MIN(v), MAX(v), COUNT(v), COUNT(*) FROM t GROUP BY g",
    "SELECT SUM(v), AVG(w) FROM t WHERE v IS NULL",
    # NULL = NULL is NULL, IS NOT DISTINCT FROM treats NULLs as equal.
    "SELECT a.k, b.k FROM t AS a JOIN t AS b ON a.v IS b.v",
]


@settings(max_examples=40, deadline=None)
@given(rows_strategy, st.sampled_from(NULL_EDGE_QUERIES))
def test_differential_null_propagation_edges(rows, sql):
    repro_sql = sql.replace(" IS b.v", " IS NOT DISTINCT FROM b.v")
    assert canonical(run_repro(rows, repro_sql)) == canonical(run_sqlite(rows, sql))


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_differential_inferred_nullability_is_sound(rows):
    """Dataflow soundness against the oracle's data: a column inferred
    non-nullable never holds a NULL produced by either engine."""
    from repro.analysis.dataflow import analyze_plan
    from repro.semantics.binder import Binder
    from repro.sql import parse_query

    sql = "SELECT k, COALESCE(v, 0), v IS NULL, w + 1 FROM t WHERE k >= 0"
    db = Database()
    db.create_table_from_rows(
        "t",
        [("k", "INTEGER"), ("g", "VARCHAR"), ("v", "INTEGER"), ("w", "INTEGER")],
        rows,
    )
    plan, _ = Binder(db.catalog).bind_query_top(parse_query(sql))
    facts = analyze_plan(plan, db.catalog)
    produced = db.execute(sql).rows
    assert canonical(produced) == canonical(run_sqlite(rows, sql))
    for offset, column in enumerate(facts.columns):
        if not column.nullable:
            assert all(row[offset] is not None for row in produced), column.name
