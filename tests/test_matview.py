"""Materialized summary tables: DDL, subsumption rewriting, roll-up
correctness (differential against plain expansion), staleness on DML,
incremental insert maintenance, and observability."""

from __future__ import annotations

import pytest

from repro import CatalogError, Database
from repro.catalog.objects import MaterializedView

ORDERS = [
    ("A", "x", "2024-01-01", 10, 4),
    ("A", "y", "2024-01-02", 20, 9),
    ("A", "y", "2024-02-11", 7, 2),
    ("B", "x", "2024-02-01", 30, 10),
    ("B", "y", "2024-02-02", 5, 1),
    ("C", "z", "2024-03-05", 7, 3),
    ("C", "x", "2024-03-06", 11, 6),
]


def make_db(*, summaries: bool = True) -> Database:
    db = Database(summaries=summaries)
    db.create_table_from_rows(
        "Orders",
        [
            ("prodName", "VARCHAR"),
            ("custName", "VARCHAR"),
            ("orderDate", "VARCHAR"),
            ("revenue", "INTEGER"),
            ("cost", "INTEGER"),
        ],
        ORDERS,
    )
    return db


@pytest.fixture
def mdb() -> Database:
    db = make_db()
    db.execute(
        """CREATE MATERIALIZED VIEW prod_cust AS
           SELECT prodName, custName,
                  SUM(revenue) AS rev, COUNT(*) AS n,
                  MIN(revenue) AS lo, MAX(revenue) AS hi,
                  AVG(revenue) AS avg_rev
           FROM Orders GROUP BY prodName, custName"""
    )
    return db


def truth(sql: str) -> list[tuple]:
    """The same query answered without summaries (differential oracle)."""
    return make_db(summaries=False).execute(sql).rows


def answered_from(db: Database, sql: str, view: str) -> bool:
    lines = [row[0] for row in db.execute(f"EXPLAIN {sql}").rows]
    return any(f"answered from materialized view {view}" in line for line in lines)


# -- DDL ---------------------------------------------------------------------


def test_create_materializes_rows(mdb):
    view = mdb.catalog.get("prod_cust")
    assert isinstance(view, MaterializedView)
    assert len(view.table) == len(truth("SELECT DISTINCT prodName, custName FROM Orders"))
    assert not view.stale


def test_create_rejects_duplicates_and_or_replace(mdb):
    with pytest.raises(CatalogError):
        mdb.execute(
            "CREATE MATERIALIZED VIEW prod_cust AS "
            "SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName"
        )
    mdb.execute(
        "CREATE OR REPLACE MATERIALIZED VIEW prod_cust AS "
        "SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName"
    )
    assert [d.name for d in mdb.catalog.get("prod_cust").definition.dimensions] == [
        "prodName"
    ]


def test_create_requires_group_by_shape(mdb):
    for bad in [
        "SELECT prodName, revenue FROM Orders",  # no aggregate
        "SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName ORDER BY 1",
        "SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY ROLLUP(prodName)",
        "SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName",  # no alias
    ]:
        with pytest.raises(CatalogError):
            mdb.execute(f"CREATE MATERIALIZED VIEW bad AS {bad}")


def test_drop_requires_matching_kind(mdb):
    with pytest.raises(CatalogError):
        mdb.execute("DROP TABLE prod_cust")
    with pytest.raises(CatalogError):
        mdb.execute("DROP VIEW prod_cust")
    mdb.execute("DROP MATERIALIZED VIEW prod_cust")
    assert mdb.catalog.get("prod_cust") is None


def test_matview_rejects_dml(mdb):
    with pytest.raises(CatalogError):
        mdb.execute("INSERT INTO prod_cust VALUES ('A', 'x', 1, 1, 1, 1, 1.0)")
    with pytest.raises(CatalogError):
        mdb.execute("DELETE FROM prod_cust")


# -- subsumption rewriting, differential against expansion -------------------

ROLLUP_QUERIES = [
    # exact grouping
    """SELECT prodName, custName, SUM(revenue), COUNT(*), MIN(revenue),
              MAX(revenue), AVG(revenue)
       FROM Orders GROUP BY prodName, custName ORDER BY 1, 2""",
    # subset grouping: partials re-aggregate
    """SELECT prodName, SUM(revenue), COUNT(*), MIN(revenue), MAX(revenue),
              AVG(revenue)
       FROM Orders GROUP BY prodName ORDER BY prodName""",
    # global grain
    "SELECT SUM(revenue), COUNT(*), MIN(revenue), MAX(revenue), AVG(revenue) FROM Orders",
    # residual WHERE over dimensions only
    """SELECT custName, SUM(revenue) FROM Orders
       WHERE prodName <> 'B' GROUP BY custName ORDER BY custName""",
    # HAVING and ORDER BY translated through the summary
    """SELECT prodName, SUM(revenue) AS total FROM Orders
       GROUP BY prodName HAVING SUM(revenue) > 20 ORDER BY total DESC""",
]


@pytest.mark.parametrize("sql", ROLLUP_QUERIES)
def test_summary_answers_match_expansion(mdb, sql):
    assert answered_from(mdb, sql, "prod_cust")
    oracle = make_db(summaries=False).execute(sql)
    got = mdb.execute(sql)
    assert got.rows == oracle.rows
    # identical result-column names too: the roll-up expressions must not
    # leak into the output (COUNT(*) surfacing as "coalesce").
    assert [c.name for c in got.columns] == [c.name for c in oracle.columns]


def test_hit_recorded_and_visible_in_stats(mdb):
    sql = "SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName"
    mdb.execute(sql)
    stats = mdb.summary_stats()["prod_cust"]
    assert stats["hits"] == 1
    assert stats["stale"] is False


def test_reject_ungrouped_column(mdb):
    sql = "SELECT orderDate, SUM(revenue) FROM Orders GROUP BY orderDate"
    assert not answered_from(mdb, sql, "prod_cust")
    assert mdb.execute(sql).rows == truth(sql)
    stats = mdb.summary_stats()["prod_cust"]
    assert stats["rejects"] == 1
    assert "orderdate" in stats["last_reject_reason"]


def test_reject_unstored_aggregate(mdb):
    # SUM(cost) is not materialized.
    sql = "SELECT prodName, SUM(cost) FROM Orders GROUP BY prodName"
    assert not answered_from(mdb, sql, "prod_cust")
    assert mdb.execute(sql).rows == truth(sql)


def test_unstored_aggregate_over_dimension_rejected(mdb):
    # COUNT(custName)'s argument is a stored dimension; translating it would
    # count summary rows (groups) instead of base rows, so the candidate must
    # be rejected, never mistranslated.
    sql = """SELECT prodName, COUNT(custName) FROM Orders
             GROUP BY prodName ORDER BY prodName"""
    assert not answered_from(mdb, sql, "prod_cust")
    assert mdb.execute(sql).rows == truth(sql)


def test_count_star_not_stored_rejected():
    db = make_db()
    db.execute(
        """CREATE MATERIALIZED VIEW by_prod AS
           SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName"""
    )
    sql = "SELECT prodName, COUNT(*) FROM Orders GROUP BY prodName ORDER BY prodName"
    assert not answered_from(db, sql, "by_prod")
    assert db.execute(sql).rows == truth(sql)


def test_count_star_matches_stored_count_star(mdb):
    # COUNT(*) parses as star_arg (no Star node), so the shape check must not
    # reject it and it must match the stored COUNT(*) measure at any grain.
    for sql in [
        "SELECT custName, COUNT(*) FROM Orders GROUP BY custName ORDER BY custName",
        "SELECT COUNT(*) FROM Orders",
    ]:
        assert answered_from(mdb, sql, "prod_cust")
        assert mdb.execute(sql).rows == truth(sql)


def test_row_level_scalar_function_not_treated_as_aggregate(mdb):
    # A no-GROUP-BY query of scalar function calls stays at row grain; it
    # must bypass summaries entirely, not bind with force_aggregate.
    sql = "SELECT UPPER(prodName) FROM Orders ORDER BY 1"
    assert not answered_from(mdb, sql, "prod_cust")
    assert mdb.execute(sql).rows == truth(sql)


def test_global_aggregate_expression_answered(mdb):
    sql = "SELECT SUM(revenue) + COUNT(*) FROM Orders"
    assert answered_from(mdb, sql, "prod_cust")
    assert mdb.execute(sql).rows == truth(sql)


def test_reject_where_on_non_dimension(mdb):
    sql = """SELECT prodName, SUM(revenue) FROM Orders
             WHERE cost > 2 GROUP BY prodName ORDER BY prodName"""
    assert not answered_from(mdb, sql, "prod_cust")
    assert mdb.execute(sql).rows == truth(sql)


def test_where_subsumption_requires_summary_filter(db):
    db = make_db()
    db.execute(
        """CREATE MATERIALIZED VIEW cheap AS
           SELECT prodName, SUM(revenue) AS r FROM Orders
           WHERE cost < 5 GROUP BY prodName"""
    )
    covered = """SELECT prodName, SUM(revenue) FROM Orders
                 WHERE cost < 5 GROUP BY prodName ORDER BY prodName"""
    uncovered = "SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName ORDER BY prodName"
    assert answered_from(db, covered, "cheap")
    assert not answered_from(db, uncovered, "cheap")
    assert db.execute(covered).rows == truth(covered)
    assert db.execute(uncovered).rows == truth(uncovered)


def test_smallest_covering_summary_preferred(mdb):
    mdb.execute(
        """CREATE MATERIALIZED VIEW by_prod AS
           SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName"""
    )
    sql = "SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName"
    assert answered_from(mdb, sql, "by_prod")
    mdb.execute(sql)
    assert mdb.summary_stats()["by_prod"]["hits"] == 1
    assert mdb.summary_stats()["prod_cust"]["hits"] == 0


def test_summaries_flag_disables_rewrites():
    db = make_db(summaries=False)
    db.execute(
        """CREATE MATERIALIZED VIEW by_prod AS
           SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName"""
    )
    sql = "SELECT prodName, SUM(revenue) FROM Orders GROUP BY prodName"
    assert not answered_from(db, sql, "by_prod")
    assert db.summary_stats()["by_prod"]["hits"] == 0


# -- AGGREGATE(m) over measure views ----------------------------------------


@pytest.fixture
def measure_mdb() -> Database:
    db = make_db()
    db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, custName, SUM(revenue) AS MEASURE rev,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
           FROM Orders"""
    )
    db.execute(
        """CREATE MATERIALIZED VIEW eos AS
           SELECT prodName, AGGREGATE(rev) AS rev, AGGREGATE(margin) AS margin
           FROM eo GROUP BY prodName"""
    )
    return db


def measure_truth(sql: str) -> list[tuple]:
    db = make_db(summaries=False)
    db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, custName, SUM(revenue) AS MEASURE rev,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
           FROM Orders"""
    )
    return db.execute(sql).rows


def test_distributive_measure_classified_and_answered(measure_mdb):
    kinds = {m.name: m.kind for m in measure_mdb.catalog.get("eos").definition.measures}
    assert kinds == {"rev": "SUM", "margin": "OPAQUE"}
    sql = "SELECT prodName, AGGREGATE(rev) FROM eo GROUP BY prodName ORDER BY prodName"
    assert answered_from(measure_mdb, sql, "eos")
    assert measure_mdb.execute(sql).rows == measure_truth(sql)


def test_opaque_measure_exact_grouping_only(measure_mdb):
    exact = "SELECT prodName, AGGREGATE(margin) FROM eo GROUP BY prodName ORDER BY prodName"
    assert answered_from(measure_mdb, exact, "eos")
    assert measure_mdb.execute(exact).rows == measure_truth(exact)

    coarser = "SELECT AGGREGATE(margin) FROM eo"
    assert not answered_from(measure_mdb, coarser, "eos")
    assert measure_mdb.execute(coarser).rows == measure_truth(coarser)
    reason = measure_mdb.summary_stats()["eos"]["last_reject_reason"]
    assert "does not roll up" in reason


# -- DML -> staleness / incremental maintenance ------------------------------


def dml_truth(sql_statements: list[str], probe: str) -> list[tuple]:
    db = make_db(summaries=False)
    for statement in sql_statements:
        db.execute(statement)
    return db.execute(probe).rows


PROBE = """SELECT prodName, SUM(revenue), COUNT(*), MIN(revenue),
                  MAX(revenue), AVG(revenue)
           FROM Orders GROUP BY prodName ORDER BY prodName"""


def test_update_marks_stale_and_falls_back(mdb):
    dml = "UPDATE Orders SET revenue = 100 WHERE custName = 'x'"
    mdb.execute(dml)
    stats = mdb.summary_stats()["prod_cust"]
    assert stats["stale"] is True
    assert stats["invalidations"] == 1
    assert not answered_from(mdb, PROBE, "prod_cust")
    assert mdb.execute(PROBE).rows == dml_truth([dml], PROBE)
    assert mdb.summary_stats()["prod_cust"]["stale_skips"] == 1


def test_delete_marks_stale_and_falls_back(mdb):
    dml = "DELETE FROM Orders WHERE prodName = 'B'"
    mdb.execute(dml)
    assert mdb.summary_stats()["prod_cust"]["stale"] is True
    assert mdb.execute(PROBE).rows == dml_truth([dml], PROBE)


def test_truncate_marks_stale(mdb):
    mdb.execute("TRUNCATE TABLE Orders")
    assert mdb.summary_stats()["prod_cust"]["stale"] is True


def test_unmatched_dml_keeps_views_fresh(mdb):
    mdb.execute("DELETE FROM Orders WHERE prodName = 'no-such-product'")
    assert mdb.summary_stats()["prod_cust"]["stale"] is False


def test_refresh_restores_hits(mdb):
    dml = "UPDATE Orders SET revenue = revenue + 1 WHERE prodName = 'A'"
    mdb.execute(dml)
    mdb.execute("REFRESH MATERIALIZED VIEW prod_cust")
    stats = mdb.summary_stats()["prod_cust"]
    assert stats["stale"] is False
    assert stats["refreshes"] == 1
    assert answered_from(mdb, PROBE, "prod_cust")
    assert mdb.execute(PROBE).rows == dml_truth([dml], PROBE)


def test_insert_merges_incrementally(mdb):
    dml = "INSERT INTO Orders VALUES ('A', 'z', '2024-04-01', 13, 5), ('D', 'q', '2024-04-02', 2, 1)"
    mdb.execute(dml)
    stats = mdb.summary_stats()["prod_cust"]
    assert stats["stale"] is False
    assert stats["incremental_merges"] == 1
    assert answered_from(mdb, PROBE, "prod_cust")
    assert mdb.execute(PROBE).rows == dml_truth([dml], PROBE)


def test_insert_invalidates_view_sourced_summaries(measure_mdb):
    # eos reads the view eo, so an insert into Orders cannot be merged
    # through the summary's own refresh query over a delta table.
    measure_mdb.execute("INSERT INTO Orders VALUES ('A', 'z', '2024-04-01', 13, 5)")
    stats = measure_mdb.summary_stats()["eos"]
    assert stats["stale"] is True
    assert stats["incremental_merges"] == 0


def test_refresh_view_sourced_summary(measure_mdb):
    measure_mdb.execute("INSERT INTO Orders VALUES ('A', 'z', '2024-04-01', 13, 5)")
    measure_mdb.execute("REFRESH MATERIALIZED VIEW eos")
    sql = "SELECT prodName, AGGREGATE(rev) FROM eo GROUP BY prodName ORDER BY prodName"
    assert answered_from(measure_mdb, sql, "eos")
    db = make_db(summaries=False)
    db.execute("INSERT INTO Orders VALUES ('A', 'z', '2024-04-01', 13, 5)")
    db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, custName, SUM(revenue) AS MEASURE rev,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
           FROM Orders"""
    )
    assert measure_mdb.execute(sql).rows == db.execute(sql).rows


def test_refresh_requires_materialized_view(mdb):
    with pytest.raises(CatalogError):
        mdb.execute("REFRESH MATERIALIZED VIEW Orders")


# -- DDL on the source chain -> staleness ------------------------------------


NEW_EO = """CREATE OR REPLACE VIEW eo AS
            SELECT prodName, custName, SUM(cost) AS MEASURE rev,
                   SUM(cost) AS MEASURE margin
            FROM Orders"""


def test_replace_source_view_invalidates_summary(measure_mdb):
    measure_mdb.execute(NEW_EO)
    assert measure_mdb.summary_stats()["eos"]["stale"] is True
    sql = "SELECT prodName, AGGREGATE(rev) FROM eo GROUP BY prodName ORDER BY prodName"
    assert not answered_from(measure_mdb, sql, "eos")
    oracle = make_db(summaries=False)
    oracle.execute(NEW_EO.replace("OR REPLACE ", ""))
    assert measure_mdb.execute(sql).rows == oracle.execute(sql).rows


def test_refresh_after_view_replacement_recomputes(measure_mdb):
    measure_mdb.execute(NEW_EO)
    measure_mdb.execute("REFRESH MATERIALIZED VIEW eos")
    sql = "SELECT prodName, AGGREGATE(rev) FROM eo GROUP BY prodName ORDER BY prodName"
    assert answered_from(measure_mdb, sql, "eos")
    oracle = make_db(summaries=False)
    oracle.execute(NEW_EO.replace("OR REPLACE ", ""))
    assert measure_mdb.execute(sql).rows == oracle.execute(sql).rows


def test_drop_source_view_invalidates_summary(measure_mdb):
    measure_mdb.execute("DROP VIEW eo")
    assert measure_mdb.summary_stats()["eos"]["stale"] is True


def test_replace_source_table_invalidates_summary(mdb):
    mdb.execute(
        """CREATE OR REPLACE TABLE Orders (
               prodName VARCHAR, custName VARCHAR, orderDate VARCHAR,
               revenue INTEGER, cost INTEGER)"""
    )
    assert mdb.summary_stats()["prod_cust"]["stale"] is True


def test_reload_source_table_invalidates_summary(mdb):
    mdb.create_table_from_rows(
        "Orders", [("prodName", "VARCHAR"), ("revenue", "INTEGER")], [("A", 1)]
    )
    assert mdb.summary_stats()["prod_cust"]["stale"] is True


def test_or_replace_materialized_view_cannot_replace_other_kinds(mdb):
    with pytest.raises(CatalogError):
        mdb.execute(
            "CREATE OR REPLACE MATERIALIZED VIEW Orders AS "
            "SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName"
        )
    assert mdb.catalog.resolve("Orders").kind == "TABLE"
    assert len(mdb.catalog.resolve("Orders").table) == len(ORDERS)
    mdb.execute("CREATE VIEW plain AS SELECT prodName FROM Orders")
    with pytest.raises(CatalogError):
        mdb.execute(
            "CREATE OR REPLACE MATERIALIZED VIEW plain AS "
            "SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName"
        )
    assert mdb.catalog.resolve("plain").kind == "VIEW"


# -- observability ------------------------------------------------------------


def test_explain_reports_rejection_reason(mdb):
    lines = [
        row[0]
        for row in mdb.execute(
            "EXPLAIN SELECT orderDate, SUM(revenue) FROM Orders GROUP BY orderDate"
        ).rows
    ]
    assert any("candidate prod_cust rejected" in line for line in lines)
    # EXPLAIN must not inflate the counters.
    assert mdb.summary_stats()["prod_cust"]["rejects"] == 0


def test_describe_materialized_view(mdb):
    info = mdb.describe("prod_cust")
    assert info["kind"] == "materialized view"
    assert info["source"] == "orders"
    assert info["stale"] is False
    assert info["dimensions"] == ["prodName", "custName"]
    assert {m["name"]: m["rollup"] for m in info["measures"]} == {
        "rev": "SUM",
        "n": "COUNT",
        "lo": "MIN",
        "hi": "MAX",
        "avg_rev": "AVG",
    }
    # hidden AVG companion columns stay hidden
    assert all(not c["name"].startswith("__") for c in info["columns"])


def test_printer_round_trips_ddl():
    from repro.sql import parse_statement
    from repro.sql.printer import to_sql

    sql = (
        "CREATE MATERIALIZED VIEW m AS SELECT prodName, SUM(revenue) AS r "
        "FROM Orders GROUP BY prodName"
    )
    assert to_sql(parse_statement(to_sql(parse_statement(sql)))) == to_sql(
        parse_statement(sql)
    )
    refresh = "REFRESH MATERIALIZED VIEW m"
    assert to_sql(parse_statement(refresh)) == refresh
