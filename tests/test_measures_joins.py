"""Measures in join queries (paper section 3.6): grain preservation,
weighted vs unweighted vs visible aggregation, wide tables."""

from __future__ import annotations

import pytest

from repro import Database


@pytest.fixture
def jdb(paper_db: Database) -> Database:
    paper_db.execute(
        """CREATE VIEW ec AS
           SELECT *, AVG(custAge) AS MEASURE avgAge,
                  SUM(custAge) AS MEASURE sumAge
           FROM Customers"""
    )
    return paper_db


def test_join_does_not_change_row_counts(jdb):
    """Measures do not affect the basic operations of SQL (section 3.6)."""
    count = jdb.execute(
        "SELECT COUNT(*) FROM Orders AS o JOIN ec AS c USING (custName)"
    ).scalar()
    assert count == 5


def test_measure_ignores_join_fanout(jdb):
    """A customer joined to three orders still counts once: measures are
    locked to the grain of their defining table."""
    weighted = jdb.execute(
        "SELECT SUM(c.custAge) FROM Orders AS o JOIN ec AS c USING (custName)"
    ).scalar()
    measure = jdb.execute(
        "SELECT AGGREGATE(c.sumAge) FROM Orders AS o JOIN ec AS c USING (custName)"
    ).scalar()
    assert weighted == 23 + 41 + 23 + 17 + 41  # fan-out double counts
    assert measure == 23 + 41 + 17  # the measure does not


def test_group_key_from_other_side_contributes_no_term(jdb):
    """Grouping by o.prodName does not constrain a Customers measure."""
    rows = jdb.execute(
        """SELECT o.prodName, c.avgAge AS unweighted
           FROM Orders AS o JOIN ec AS c USING (custName)
           GROUP BY o.prodName ORDER BY o.prodName"""
    ).rows
    assert all(r[1] == pytest.approx(27.0) for r in rows)


def test_group_key_from_measure_side_does_constrain(jdb):
    rows = jdb.execute(
        """SELECT c.custName, c.sumAge
           FROM Orders AS o JOIN ec AS c USING (custName)
           GROUP BY c.custName ORDER BY c.custName"""
    ).rows
    assert rows == [("Alice", 23), ("Bob", 41), ("Celia", 17)]


def test_visible_restricts_to_group_join_partners(jdb):
    rows = jdb.execute(
        """SELECT o.prodName, c.avgAge AT (VISIBLE) AS viz
           FROM Orders AS o JOIN ec AS c USING (custName)
           GROUP BY o.prodName ORDER BY o.prodName"""
    ).rows
    by_prod = dict(rows)
    assert by_prod["Acme"] == pytest.approx(41.0)  # only Bob buys Acme
    assert by_prod["Happy"] == pytest.approx(32.0)  # Alice and Bob
    assert by_prod["Whizz"] == pytest.approx(17.0)  # only Celia


def test_visible_dedupes_repeat_buyers(jdb):
    """Alice buys Happy twice; VISIBLE still counts her age once."""
    viz = jdb.execute(
        """SELECT c.avgAge AT (VISIBLE) FROM Orders AS o
           JOIN ec AS c USING (custName)
           WHERE o.prodName = 'Happy' GROUP BY o.prodName"""
    ).scalar()
    assert viz == pytest.approx((23 + 41) / 2)


def test_measures_from_both_sides_of_a_join(paper_db):
    paper_db.execute(
        "CREATE VIEW eo2 AS SELECT *, SUM(revenue) AS MEASURE totalRev FROM Orders"
    )
    paper_db.execute(
        "CREATE VIEW ec2 AS SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers"
    )
    rows = paper_db.execute(
        """SELECT o.prodName, AGGREGATE(o.totalRev) AS rev,
                  AGGREGATE(c.avgAge) AS age
           FROM eo2 AS o JOIN ec2 AS c USING (custName)
           GROUP BY o.prodName ORDER BY o.prodName"""
    ).rows
    by_prod = {r[0]: (r[1], r[2]) for r in rows}
    assert by_prod["Acme"] == (5, pytest.approx(41.0))
    assert by_prod["Happy"] == (17, pytest.approx(32.0))


def test_wide_table_view_with_join(paper_db):
    """A wide table (section 5.3): measures stay consistent despite the
    denormalizing join."""
    paper_db.execute(
        """CREATE VIEW wide AS
           SELECT o.prodName, o.orderDate, c.custName, c.custAge,
                  SUM(o.revenue) AS MEASURE rev
           FROM Orders AS o JOIN Customers AS c USING (custName)"""
    )
    rows = paper_db.execute(
        "SELECT prodName, AGGREGATE(rev) FROM wide GROUP BY prodName ORDER BY 1"
    ).rows
    assert rows == [("Acme", 5), ("Happy", 17), ("Whizz", 3)]


def test_wide_table_filter_on_dimension_attribute(paper_db):
    paper_db.execute(
        """CREATE VIEW wide2 AS
           SELECT o.prodName, c.custAge, SUM(o.revenue) AS MEASURE rev
           FROM Orders AS o JOIN Customers AS c USING (custName)"""
    )
    rows = paper_db.execute(
        """SELECT prodName, AGGREGATE(rev) FROM wide2
           WHERE custAge >= 18 GROUP BY prodName ORDER BY 1"""
    ).rows
    assert rows == [("Acme", 5), ("Happy", 17)]


def test_left_join_visible_with_unmatched_rows(paper_db):
    paper_db.execute("INSERT INTO Orders VALUES ('Ghost', 'Nobody', DATE '2024-01-01', 9, 1)")
    paper_db.execute(
        "CREATE VIEW ec3 AS SELECT *, COUNT(*) AS MEASURE n FROM Customers"
    )
    rows = paper_db.execute(
        """SELECT o.prodName, c.n AT (VISIBLE) AS vizCount
           FROM Orders AS o LEFT JOIN ec3 AS c USING (custName)
           WHERE o.revenue > 0
           GROUP BY o.prodName ORDER BY o.prodName"""
    ).rows
    by_prod = dict(rows)
    # Ghost's order matches no customer: no visible customers in its group.
    assert by_prod["Ghost"] == 0
    assert by_prod["Happy"] == 2
