"""Measure edge cases crossing module boundaries."""

from __future__ import annotations

import pytest

from repro import Database


@pytest.fixture
def edb(paper_db: Database) -> Database:
    paper_db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, custName, YEAR(orderDate) AS y,
                  SUM(revenue) AS MEASURE rev,
                  AVG(revenue) AS MEASURE avgRev
           FROM Orders"""
    )
    return paper_db


def test_measure_inside_aggregate_argument(edb):
    """SUM over per-row measure values: each input row contributes its
    row-grain evaluation."""
    value = edb.execute(
        """SELECT SUM(perRowTotal) FROM
           (SELECT prodName, rev AT (ALL custName, y) AS perRowTotal FROM eo)"""
    ).scalar()
    # Happy rows contribute 17 three times; Acme 5; Whizz 3.
    assert value == 17 * 3 + 5 + 3


def test_measure_in_join_on_clause(edb):
    """Row-grain measures are legal in join conditions."""
    rows = edb.execute(
        """SELECT DISTINCT c.custName
           FROM eo AS o JOIN Customers AS c
             ON o.custName = c.custName AND o.rev AT (ALL custName, y) > 10
           ORDER BY c.custName"""
    ).rows
    # Only Happy rows (product total 17 > 10) join; Happy buyers are
    # Alice and Bob.
    assert rows == [("Alice",), ("Bob",)]


def test_set_value_referencing_group_column(edb):
    """SET values may reference outer group keys (lifted onto slots)."""
    rows = edb.execute(
        """SELECT custName, rev AT (ALL SET custName = custName) AS v
           FROM eo GROUP BY custName ORDER BY custName"""
    ).rows
    assert rows == [("Alice", 13), ("Bob", 9), ("Celia", 3)]


def test_two_ats_on_same_measure_in_one_expression(edb):
    row = edb.execute(
        """SELECT prodName,
                  rev AT (SET y = 2023) + rev AT (SET y = 2024) AS combined
           FROM eo WHERE prodName = 'Happy' GROUP BY prodName"""
    ).rows[0]
    assert row == ("Happy", 6 + 7)


def test_distinct_over_measure_results(edb):
    rows = edb.execute(
        """SELECT DISTINCT rev AT (ALL) AS total FROM eo GROUP BY prodName"""
    ).rows
    assert rows == [(25,)]


def test_measure_formula_with_case(paper_db):
    paper_db.execute(
        """CREATE VIEW flagged AS
           SELECT prodName,
                  CASE WHEN SUM(revenue) > 10 THEN 'hot' ELSE 'cold' END
                    AS MEASURE heat
           FROM Orders"""
    )
    rows = paper_db.execute(
        "SELECT prodName, AGGREGATE(heat) FROM flagged GROUP BY prodName ORDER BY 1"
    ).rows
    assert rows == [("Acme", "cold"), ("Happy", "hot"), ("Whizz", "cold")]


def test_measure_formula_with_filter_clause(paper_db):
    paper_db.execute(
        """CREATE VIEW filtered AS
           SELECT prodName,
                  SUM(revenue) FILTER (WHERE custName = 'Alice') AS MEASURE aliceRev
           FROM Orders"""
    )
    rows = paper_db.execute(
        "SELECT prodName, AGGREGATE(aliceRev) FROM filtered GROUP BY prodName ORDER BY 1"
    ).rows
    assert rows == [("Acme", None), ("Happy", 13), ("Whizz", None)]


def test_measure_formula_with_distinct_aggregate(paper_db):
    paper_db.execute(
        """CREATE VIEW buyers AS
           SELECT prodName, COUNT(DISTINCT custName) AS MEASURE nBuyers
           FROM Orders"""
    )
    rows = paper_db.execute(
        "SELECT prodName, AGGREGATE(nBuyers) FROM buyers GROUP BY prodName ORDER BY 1"
    ).rows
    assert rows == [("Acme", 1), ("Happy", 2), ("Whizz", 1)]


def test_full_join_visible(paper_db):
    paper_db.execute("INSERT INTO Customers VALUES ('Drew', 30)")  # no orders
    paper_db.execute(
        "CREATE VIEW ec AS SELECT *, COUNT(*) AS MEASURE n FROM Customers"
    )
    rows = paper_db.execute(
        """SELECT o.prodName, c.n AT (VISIBLE) AS viz
           FROM Orders AS o FULL JOIN ec AS c USING (custName)
           WHERE c.custAge IS NOT NULL
           GROUP BY o.prodName ORDER BY o.prodName NULLS LAST"""
    ).rows
    by_prod = dict(rows)
    # Drew's padded row forms the NULL-product group, but the join condition
    # is a term of the VISIBLE context (paper Table 3) and NULL = 'Drew' is
    # never TRUE: no customer is visible through the padded join row.
    assert by_prod[None] == 0
    assert by_prod["Happy"] == 2


def test_group_by_expression_over_two_dims(edb):
    """A group key combining two dimensions still translates to the source."""
    rows = edb.execute(
        """SELECT prodName || '/' || custName AS pc, rev
           FROM eo GROUP BY prodName || '/' || custName ORDER BY pc"""
    ).rows
    by_key = dict(rows)
    assert by_key["Happy/Alice"] == 13
    assert by_key["Happy/Bob"] == 4


def test_measure_eval_count_scales_with_groups_not_rows(edb):
    edb.execute("SELECT prodName, AGGREGATE(rev) FROM eo GROUP BY prodName")
    stats = edb.last_stats
    assert stats.measure_evaluations == 3  # one per product group


def test_empty_source_measure(db):
    db.execute("CREATE TABLE empty (k VARCHAR, v INTEGER)")
    db.execute("CREATE VIEW em AS SELECT k, SUM(v) AS MEASURE s FROM empty")
    result = db.execute("SELECT AGGREGATE(s) FROM em")
    assert result.rows == [(None,)]


def test_measure_view_survives_base_table_mutation(paper_db):
    paper_db.execute(
        "CREATE VIEW live AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders"
    )
    before = paper_db.execute("SELECT AGGREGATE(r) FROM live").scalar()
    paper_db.execute(
        "INSERT INTO Orders VALUES ('Happy', 'Bob', DATE '2024-12-01', 100, 1)"
    )
    after = paper_db.execute("SELECT AGGREGATE(r) FROM live").scalar()
    assert (before, after) == (25, 125)


def test_update_then_measure(paper_db):
    paper_db.execute(
        "CREATE VIEW live2 AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders"
    )
    paper_db.execute("UPDATE Orders SET revenue = revenue * 10 WHERE prodName = 'Acme'")
    rows = paper_db.execute(
        "SELECT prodName, AGGREGATE(r) FROM live2 GROUP BY prodName ORDER BY 1"
    ).rows
    assert ("Acme", 50) in rows


def test_measure_formula_with_scalar_subquery(paper_db):
    """Formulas may contain scalar subqueries (row-independent parts)."""
    paper_db.execute(
        """CREATE VIEW pc AS
           SELECT prodName,
                  SUM(revenue) / (SELECT COUNT(*) FROM Customers)
                    AS MEASURE perCustomer
           FROM Orders"""
    )
    rows = paper_db.execute(
        "SELECT prodName, AGGREGATE(perCustomer) FROM pc GROUP BY prodName ORDER BY 1"
    ).rows
    assert [(r[0], round(r[1], 3)) for r in rows] == [
        ("Acme", round(5 / 3, 3)),
        ("Happy", round(17 / 3, 3)),
        ("Whizz", 1.0),
    ]


def test_measure_formula_with_in_list(paper_db):
    paper_db.execute(
        """CREATE VIEW fl AS
           SELECT prodName,
                  SUM(revenue) IN (5, 17) AS MEASURE isKnownTotal
           FROM Orders"""
    )
    rows = paper_db.execute(
        "SELECT prodName, AGGREGATE(isKnownTotal) FROM fl GROUP BY prodName ORDER BY 1"
    ).rows
    assert rows == [("Acme", True), ("Happy", True), ("Whizz", False)]
