"""Prometheus text exposition format conformance.

The ``/metrics`` endpoint is only useful if real Prometheus can scrape
it, so these tests hold :meth:`MetricsRegistry.render_prometheus` to the
spec: line grammar, label-value escaping (backslash, quote, newline),
HELP escaping, the ``_total`` counter naming convention, and cumulative
histogram buckets ending in ``+Inf``.
"""

from __future__ import annotations

import re

import pytest

from repro.api import Database
from repro.telemetry import Telemetry
from repro.telemetry.registry import MetricsRegistry

# One exposition line: HELP/TYPE comment, or `name{labels} value`.
_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE = re.compile(
    rf"^{_NAME}(\{{.*\}})? -?(\d+(\.\d+)?([eE][+-]?\d+)?|\+Inf|NaN)$"
)
_COMMENT = re.compile(rf"^# (HELP|TYPE) {_NAME}( .*)?$")


def _unescape_label(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        if value[i] == "\\" and i + 1 < len(value):
            out.append({"n": "\n", "\\": "\\", '"': '"'}[value[i + 1]])
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


class TestLineGrammar:
    def test_every_line_of_a_real_scrape_parses(self):
        db = Database(telemetry=True)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.query("SELECT SUM(x) FROM t")
        db.query("SELECT * FROM repro_running_queries")
        with pytest.raises(Exception):
            db.query("SELECT nope FROM t")
        text = db.metrics_text()
        assert text.endswith("\n")
        for line in text.rstrip("\n").split("\n"):
            assert _SAMPLE.match(line) or _COMMENT.match(line), (
                f"malformed exposition line: {line!r}"
            )

    def test_help_and_type_precede_samples(self):
        text = Database(telemetry=True).metrics_text()
        seen_type: dict = {}
        for line in text.rstrip("\n").split("\n"):
            if line.startswith("# TYPE "):
                name, kind = line.split(" ")[2:4]
                assert name not in seen_type, f"duplicate TYPE for {name}"
                seen_type[name] = kind
            elif not line.startswith("#"):
                base = line.split("{")[0].split(" ")[0]
                family = re.sub(r"_(bucket|sum|count)$", "", base)
                assert base in seen_type or family in seen_type, (
                    f"sample {base} before its TYPE line"
                )


class TestCounterNaming:
    def test_counter_registration_enforces_total_suffix(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="_total"):
            registry.counter("requests", "A misnamed counter.")
        registry.counter("requests_total", "A counter.")

    def test_every_builtin_counter_ends_in_total(self):
        for metric in Telemetry().registry.metrics():
            if metric.kind == "counter":
                assert metric.name.endswith("_total"), metric.name

    def test_gauges_are_not_forced_into_the_convention(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth", "Current depth.")
        gauge.set(3)
        assert "queue_depth 3" in registry.render_prometheus()


class TestLabelEscaping:
    def test_backslash_quote_and_newline_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "weird_total", "Counts weird label values.", ["sql"]
        )
        hostile = 'SELECT "a\\b"\nFROM t'
        counter.inc(sql=hostile)
        text = registry.render_prometheus()
        sample = [
            line
            for line in text.splitlines()
            if line.startswith("weird_total{")
        ]
        assert len(sample) == 1, "newline in a label value split the line"
        rendered = sample[0]
        assert "\\\\" in rendered and '\\"' in rendered and "\\n" in rendered
        inner = re.search(r'sql="((?:[^"\\]|\\.)*)"', rendered).group(1)
        assert _unescape_label(inner) == hostile

    def test_escaped_line_still_matches_the_grammar(self):
        registry = MetricsRegistry()
        counter = registry.counter("odd_total", "Odd.", ["v"])
        counter.inc(v='back\\slash and "quote"')
        for line in registry.render_prometheus().rstrip("\n").split("\n"):
            assert _SAMPLE.match(line) or _COMMENT.match(line), line


class TestHelpEscaping:
    def test_newline_and_backslash_in_help_stay_on_one_line(self):
        registry = MetricsRegistry()
        registry.gauge("g", "first line\nsecond \\ line")
        text = registry.render_prometheus()
        help_lines = [
            line for line in text.splitlines() if line.startswith("# HELP g ")
        ]
        assert help_lines == ["# HELP g first line\\nsecond \\\\ line"]


class TestHistogramBuckets:
    def test_buckets_are_cumulative_and_end_in_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency_ms", "Latency.", buckets=(1.0, 5.0, 25.0)
        )
        for value in (0.5, 0.7, 3.0, 30.0, 100.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        buckets = []
        for line in text.splitlines():
            match = re.match(r'latency_ms_bucket\{le="([^"]+)"\} (\d+)', line)
            if match:
                buckets.append((match.group(1), int(match.group(2))))
        assert [b[0] for b in buckets] == ["1", "5", "25", "+Inf"]
        counts = [b[1] for b in buckets]
        assert counts == sorted(counts), "buckets are not cumulative"
        assert counts == [2, 3, 3, 5]
        assert "latency_ms_count 5" in text
        assert "latency_ms_sum 134.2" in text

    def test_histogram_with_labels_renders_le_last(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "op_ms", "Op latency.", labelnames=["op"], buckets=(1.0,)
        )
        histogram.observe(0.5, op="scan")
        text = registry.render_prometheus()
        assert re.search(r'op_ms_bucket\{op="scan", le="1"\} 1', text)
        assert re.search(r'op_ms_bucket\{op="scan", le="\+Inf"\} 1', text)
