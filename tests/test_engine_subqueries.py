"""Subquery execution: scalar, EXISTS, IN; correlation; memoization."""

from __future__ import annotations

import pytest

from repro import BindError, Database, ExecutionError


@pytest.fixture
def sdb(db: Database) -> Database:
    db.execute("CREATE TABLE emp (name VARCHAR, dept VARCHAR, salary INTEGER)")
    db.execute(
        """INSERT INTO emp VALUES
           ('ann', 'eng', 100), ('bo', 'eng', 80),
           ('cy', 'ops', 60), ('di', 'ops', 70)"""
    )
    return db


def test_uncorrelated_scalar_subquery(sdb):
    rows = sdb.execute(
        "SELECT name FROM emp WHERE salary > (SELECT AVG(salary) FROM emp) ORDER BY name"
    ).rows
    assert rows == [("ann",), ("bo",)]  # AVG is 77.5


def test_correlated_scalar_subquery(sdb):
    rows = sdb.execute(
        """SELECT name FROM emp AS e
           WHERE salary > (SELECT AVG(salary) FROM emp AS i WHERE i.dept = e.dept)
           ORDER BY name"""
    ).rows
    assert rows == [("ann",), ("di",)]


def test_scalar_subquery_empty_is_null(sdb):
    assert (
        sdb.execute("SELECT (SELECT salary FROM emp WHERE name = 'zz')").scalar()
        is None
    )


def test_scalar_subquery_multiple_rows_raises(sdb):
    with pytest.raises(ExecutionError):
        sdb.execute("SELECT (SELECT salary FROM emp)")


def test_scalar_subquery_must_have_one_column(sdb):
    with pytest.raises(BindError):
        sdb.execute("SELECT (SELECT name, salary FROM emp WHERE name = 'ann')")


def test_exists(sdb):
    rows = sdb.execute(
        """SELECT DISTINCT dept FROM emp AS e
           WHERE EXISTS (SELECT 1 FROM emp AS i
                         WHERE i.dept = e.dept AND i.salary >= 100)"""
    ).rows
    assert rows == [("eng",)]


def test_not_exists(sdb):
    rows = sdb.execute(
        """SELECT DISTINCT dept FROM emp AS e
           WHERE NOT EXISTS (SELECT 1 FROM emp AS i
                             WHERE i.dept = e.dept AND i.salary >= 100)"""
    ).rows
    assert rows == [("ops",)]


def test_in_subquery(sdb):
    rows = sdb.execute(
        """SELECT name FROM emp
           WHERE dept IN (SELECT dept FROM emp WHERE salary >= 100)
           ORDER BY name"""
    ).rows
    assert rows == [("ann",), ("bo",)]


def test_not_in_subquery_with_null_yields_nothing(sdb):
    sdb.execute("INSERT INTO emp VALUES ('nn', NULL, 50)")
    rows = sdb.execute(
        "SELECT name FROM emp WHERE dept NOT IN (SELECT dept FROM emp)"
    ).rows
    # The NULL dept in the subquery makes NOT IN unknowable for every row.
    assert rows == []


def test_subquery_in_select_list(sdb):
    rows = sdb.execute(
        """SELECT name, (SELECT MAX(salary) FROM emp AS i WHERE i.dept = e.dept)
           FROM emp AS e ORDER BY name"""
    ).rows
    assert rows == [("ann", 100), ("bo", 100), ("cy", 70), ("di", 70)]


def test_correlated_subquery_in_select_of_grouped_query(sdb):
    rows = sdb.execute(
        """SELECT dept,
                  (SELECT COUNT(*) FROM emp AS i WHERE i.dept = e.dept) AS n
           FROM emp AS e GROUP BY dept ORDER BY dept"""
    ).rows
    assert rows == [("eng", 2), ("ops", 2)]


def test_correlated_on_group_expression(sdb):
    rows = sdb.execute(
        """SELECT UPPER(dept),
                  (SELECT SUM(salary) FROM emp AS i WHERE UPPER(i.dept) = UPPER(e.dept))
           FROM emp AS e GROUP BY UPPER(dept) ORDER BY 1"""
    ).rows
    assert rows == [("ENG", 180), ("OPS", 130)]


def test_correlation_to_nongrouped_column_rejected(sdb):
    with pytest.raises(BindError):
        sdb.execute(
            """SELECT dept,
                      (SELECT COUNT(*) FROM emp AS i WHERE i.name = e.name)
               FROM emp AS e GROUP BY dept"""
        )


def test_nested_correlation_two_levels(sdb):
    rows = sdb.execute(
        """SELECT name FROM emp AS e
           WHERE salary = (SELECT MAX(salary) FROM emp AS i
                           WHERE i.dept = e.dept
                             AND EXISTS (SELECT 1 FROM emp AS j
                                         WHERE j.dept = e.dept AND j.salary < i.salary))
           ORDER BY name"""
    ).rows
    assert rows == [("ann",), ("di",)]


def test_subquery_cache_hits(sdb):
    sdb.execute(
        """SELECT name FROM emp AS e
           WHERE salary > (SELECT AVG(salary) FROM emp AS i WHERE i.dept = e.dept)"""
    )
    stats = sdb.last_stats
    # Four rows but only two distinct departments: two executions, two hits.
    assert stats.subquery_executions == 2
    assert stats.subquery_cache_hits == 2


def test_subquery_cache_disabled(sdb):
    cold = Database(cache=False)
    cold.execute("CREATE TABLE emp (name VARCHAR, dept VARCHAR, salary INTEGER)")
    cold.execute(
        """INSERT INTO emp VALUES ('ann', 'eng', 100), ('bo', 'eng', 80),
           ('cy', 'ops', 60), ('di', 'ops', 70)"""
    )
    cold.execute(
        """SELECT name FROM emp AS e
           WHERE salary > (SELECT AVG(salary) FROM emp AS i WHERE i.dept = e.dept)"""
    )
    assert cold.last_stats.subquery_executions == 4
    assert cold.last_stats.subquery_cache_hits == 0


def test_subquery_over_view(sdb):
    sdb.execute("CREATE VIEW eng AS SELECT * FROM emp WHERE dept = 'eng'")
    assert sdb.execute("SELECT (SELECT COUNT(*) FROM eng)").scalar() == 2
