"""QUALIFY clause: filtering on window-function results."""

from __future__ import annotations

import pytest

from repro import Database


@pytest.fixture
def q(db: Database) -> Database:
    db.execute("CREATE TABLE s (grp VARCHAR, v INTEGER)")
    db.execute(
        """INSERT INTO s VALUES
           ('a', 10), ('a', 30), ('a', 20),
           ('b', 5), ('b', 50)"""
    )
    return db


def test_qualify_top_per_group(q):
    rows = q.execute(
        """SELECT grp, v FROM s
           QUALIFY ROW_NUMBER() OVER (PARTITION BY grp ORDER BY v DESC) = 1
           ORDER BY grp"""
    ).rows
    assert rows == [("a", 30), ("b", 50)]


def test_qualify_window_also_in_select(q):
    rows = q.execute(
        """SELECT grp, v, RANK() OVER (PARTITION BY grp ORDER BY v) AS r FROM s
           QUALIFY RANK() OVER (PARTITION BY grp ORDER BY v) <= 2
           ORDER BY grp, v"""
    ).rows
    assert rows == [("a", 10, 1), ("a", 20, 2), ("b", 5, 1), ("b", 50, 2)]


def test_qualify_after_where(q):
    rows = q.execute(
        """SELECT grp, v FROM s WHERE v > 5
           QUALIFY ROW_NUMBER() OVER (PARTITION BY grp ORDER BY v) = 1
           ORDER BY grp"""
    ).rows
    assert rows == [("a", 10), ("b", 50)]


def test_qualify_on_aggregate_query(q):
    rows = q.execute(
        """SELECT grp, SUM(v) AS total FROM s GROUP BY grp
           QUALIFY RANK() OVER (ORDER BY SUM(v) DESC) = 1"""
    ).rows
    assert rows == [("a", 60)]


def test_qualify_aggregate_with_having(q):
    rows = q.execute(
        """SELECT grp, SUM(v) AS total FROM s GROUP BY grp
           HAVING COUNT(*) >= 2
           QUALIFY ROW_NUMBER() OVER (ORDER BY SUM(v)) = 1"""
    ).rows
    assert rows == [("b", 55)]


def test_qualify_comparing_value_to_window(q):
    rows = q.execute(
        """SELECT grp, v FROM s
           QUALIFY v > AVG(v) OVER (PARTITION BY grp)
           ORDER BY grp, v"""
    ).rows
    assert rows == [("a", 30), ("b", 50)]


def test_qualify_round_trip():
    from repro.sql import parse_statement, to_sql

    sql = "SELECT a FROM t QUALIFY ROW_NUMBER() OVER (ORDER BY a) = 1"
    printed = to_sql(parse_statement(sql))
    assert "QUALIFY" in printed
    assert to_sql(parse_statement(printed)) == printed


def test_qualify_with_measures(db):
    """QUALIFY composes with measures: top products by measure value."""
    from repro.workloads.paper_data import load_paper_tables

    load_paper_tables(db)
    db.execute("CREATE VIEW eo AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders")
    rows = db.execute(
        """SELECT prodName, AGGREGATE(r) AS rev FROM eo GROUP BY prodName
           QUALIFY RANK() OVER (ORDER BY AGGREGATE(r) DESC) <= 2
           ORDER BY rev DESC"""
    ).rows
    assert rows == [("Happy", 17), ("Acme", 5)]
