"""Property tests: profiled cardinalities are self-consistent.

For random data and the paper's Listing 12 query family, executed under
``profile=True`` through three rewrite strategies (the general correlated
subquery expansion, the window-aggregate rewrite, and the WinMagic rewrite),
the reported operator tree must satisfy:

* the root operator's ``rows_out`` equals the result cardinality, and
* every operator's ``rows_in`` equals the sum of its children's
  ``rows_out`` (direct plan inputs only — expression-level subquery
  executions are excluded by construction).

All strategies must also agree on the result rows themselves.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.sql import parse_statement, to_sql
from repro.sql.ast import QueryStatement

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),           # g: partition key
        st.integers(-10, 10),                       # v: value
    ),
    min_size=1,
    max_size=20,
)

#: Listing 12 over the random table: rows whose v exceeds their group AVG.
MEASURE_SQL = """
SELECT o.g, o.v FROM
  (SELECT g, v, AVG(v) AS MEASURE am FROM t) AS o
WHERE o.v > o.am AT (WHERE g = o.g)
ORDER BY 1, 2
"""
CORRELATED_SQL = """
SELECT o.g, o.v FROM t AS o
WHERE o.v > (SELECT AVG(v) FROM t AS i WHERE i.g = o.g)
ORDER BY 1, 2
"""


def make_db(rows) -> Database:
    db = Database(profile=True)
    db.create_table_from_rows("t", [("g", "VARCHAR"), ("v", "INTEGER")], rows)
    return db


def winmagic_sql(db: Database) -> str:
    """The WinMagic rewrite of the correlated formulation, as SQL."""
    from repro.core.winmagic import winmagic_rewrite

    statement = parse_statement(CORRELATED_SQL)
    assert isinstance(statement, QueryStatement)
    return to_sql(winmagic_rewrite(db, statement.query))


def check_cardinalities(profile, result) -> None:
    tree = profile.operator_tree
    assert tree is not None
    assert tree["rows_out"] == len(result.rows)
    for node in walk(tree):
        children = node.get("children")
        if children:
            assert node["rows_in"] == sum(c["rows_out"] for c in children), (
                f"{node['label']}: rows_in={node['rows_in']} != "
                f"sum(children rows_out)"
            )


def walk(node):
    yield node
    for child in node.get("children", ()):
        yield from walk(child)


def run_strategy(db: Database, strategy: str):
    """Execute the workload via one strategy; returns (result, profile)."""
    if strategy == "expand":
        sql = db.expand(MEASURE_SQL, strategy="subquery")
    elif strategy == "window":
        sql = db.expand(MEASURE_SQL, strategy="window")
    else:  # winmagic
        sql = winmagic_sql(db)
    result = db.execute(sql)
    return result, db.last_profile()


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_cardinality_consistency_across_strategies(rows):
    db = make_db(rows)
    results = {}
    for strategy in ("expand", "window", "winmagic"):
        result, profile = run_strategy(db, strategy)
        check_cardinalities(profile, result)
        results[strategy] = result.rows
    # All three rewrites compute the same relation.
    assert results["expand"] == results["window"] == results["winmagic"]


@settings(max_examples=40, deadline=None)
@given(rows_strategy)
def test_cardinality_consistency_interpreted_measures(rows):
    """The measure query executed directly (no pre-expansion) satisfies the
    same invariants — subquery plans run from expression evaluation must
    never pollute an operator's rows_in."""
    db = make_db(rows)
    result = db.execute(MEASURE_SQL)
    check_cardinalities(db.last_profile(), result)


@settings(max_examples=30, deadline=None)
@given(rows_strategy)
def test_profile_counters_consistent(rows):
    """Cache hits never exceed evaluations; scanned rows are positive
    whenever the table is read."""
    db = make_db(rows)
    db.execute(MEASURE_SQL)
    counters = db.last_profile().counters
    assert counters["measure_cache_hits"] <= counters["measure_evaluations"]
    assert counters["subquery_cache_hits"] <= counters["subquery_executions"]
    assert counters["rows_scanned"] >= len(rows)


@settings(max_examples=30, deadline=None)
@given(rows_strategy, st.sampled_from(["expand", "window", "winmagic"]))
def test_profile_agrees_with_unprofiled_run(rows, strategy):
    """Profiling must not change results: the same strategy with profiling
    off returns identical rows."""
    profiled = make_db(rows)
    plain = Database()
    plain.create_table_from_rows(
        "t", [("g", "VARCHAR"), ("v", "INTEGER")], rows
    )
    result, profile = run_strategy(profiled, strategy)
    if strategy == "expand":
        sql = plain.expand(MEASURE_SQL, strategy="subquery")
    elif strategy == "window":
        sql = plain.expand(MEASURE_SQL, strategy="window")
    else:
        sql = winmagic_sql(plain)
    assert plain.execute(sql).rows == result.rows
    assert profile is not None and profile.result_rows == len(result.rows)
