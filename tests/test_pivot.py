"""PIVOT: the OLAP cross-tab operator, desugared to CASE aggregates."""

from __future__ import annotations

import pytest

from repro import Database, UnsupportedError


@pytest.fixture
def pdb(paper_db: Database) -> Database:
    return paper_db


def test_basic_pivot(pdb):
    rows = pdb.execute(
        """SELECT * FROM
             (SELECT prodName, custName, revenue FROM Orders)
             PIVOT(SUM(revenue) FOR custName IN ('Alice', 'Bob', 'Celia'))
           ORDER BY prodName"""
    ).rows
    assert rows == [
        ("Acme", None, 5, None),
        ("Happy", 13, 4, None),
        ("Whizz", None, None, 3),
    ]


def test_pivot_column_aliases(pdb):
    result = pdb.execute(
        """SELECT * FROM
             (SELECT prodName, custName, revenue FROM Orders)
             PIVOT(SUM(revenue) FOR custName IN ('Alice' AS alice, 'Bob' AS bob))
           ORDER BY prodName"""
    )
    assert result.column_names == ["prodName", "alice", "bob"]


def test_pivot_on_base_table_groups_remaining_columns(pdb):
    result = pdb.execute(
        """SELECT * FROM Orders
           PIVOT(SUM(revenue) FOR custName IN ('Alice'))
           ORDER BY prodName, orderDate"""
    )
    # orderDate and cost are untouched -> they remain grouping columns.
    assert result.column_names == ["prodName", "orderDate", "cost", "Alice"]
    assert len(result.rows) == 5


def test_pivot_count(pdb):
    rows = pdb.execute(
        """SELECT * FROM
             (SELECT prodName, custName FROM Orders)
             PIVOT(COUNT(custName) FOR custName IN ('Alice', 'Bob'))
           ORDER BY prodName"""
    ).rows
    assert rows == [("Acme", 0, 1), ("Happy", 2, 1), ("Whizz", 0, 0)]


def test_pivot_integer_values_get_safe_names(db):
    db.execute("CREATE TABLE q (k VARCHAR, y INTEGER, v INTEGER)")
    db.execute("INSERT INTO q VALUES ('a', 2023, 1), ('a', 2024, 2)")
    result = db.execute(
        "SELECT * FROM q PIVOT(SUM(v) FOR y IN (2023, 2024)) ORDER BY k"
    )
    assert result.column_names == ["k", "_2023", "_2024"]
    assert result.rows == [("a", 1, 2)]


def test_pivot_with_alias_and_further_query(pdb):
    value = pdb.execute(
        """SELECT p.Alice FROM
             (SELECT prodName, custName, revenue FROM Orders)
             PIVOT(SUM(revenue) FOR custName IN ('Alice')) AS p
           WHERE p.prodName = 'Happy'"""
    ).scalar()
    assert value == 13


def test_pivot_over_view_with_measures_materializes(pdb):
    pdb.execute(
        """CREATE VIEW eo AS
           SELECT prodName, custName, SUM(revenue) AS MEASURE r FROM Orders"""
    )
    # Measure columns are skipped when enumerating pivot grouping columns;
    # pivot over the regular columns still works.
    rows = pdb.execute(
        """SELECT * FROM
             (SELECT prodName, custName, AGGREGATE(r) AS rev FROM eo
              GROUP BY prodName, custName)
             PIVOT(SUM(rev) FOR custName IN ('Alice', 'Bob'))
           ORDER BY prodName"""
    ).rows
    assert rows == [("Acme", None, 5), ("Happy", 13, 4), ("Whizz", None, None)]


def test_pivot_requires_argument_aggregate(pdb):
    with pytest.raises(UnsupportedError):
        pdb.execute("SELECT * FROM Orders PIVOT(COUNT(*) FOR custName IN ('Alice'))")


def test_pivot_round_trip():
    from repro.sql import parse_statement, to_sql

    sql = ("SELECT * FROM t PIVOT(SUM(v) FOR k IN ('a' AS x, 'b')) AS p")
    printed = to_sql(parse_statement(sql))
    assert "PIVOT(SUM(v) FOR k IN ('a' AS x, 'b'))" in printed
    assert to_sql(parse_statement(printed)) == printed


def test_pivot_matches_manual_case(pdb):
    pivoted = pdb.execute(
        """SELECT * FROM
             (SELECT prodName, custName, revenue FROM Orders)
             PIVOT(SUM(revenue) FOR custName IN ('Alice', 'Bob'))
           ORDER BY prodName"""
    ).rows
    manual = pdb.execute(
        """SELECT prodName,
                  SUM(CASE WHEN custName = 'Alice' THEN revenue END) AS a,
                  SUM(CASE WHEN custName = 'Bob' THEN revenue END) AS b
           FROM Orders GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert pivoted == manual


# -- UNPIVOT -----------------------------------------------------------------


@pytest.fixture
def wide(db: Database) -> Database:
    db.execute("CREATE TABLE wide (k VARCHAR, q1 INTEGER, q2 INTEGER, q3 INTEGER)")
    db.execute("INSERT INTO wide VALUES ('a', 1, 2, NULL), ('b', 4, NULL, 6)")
    return db


def test_unpivot_basic(wide):
    rows = wide.execute(
        """SELECT * FROM wide UNPIVOT(sales FOR quarter IN (q1, q2, q3))
           ORDER BY k, quarter"""
    ).rows
    assert rows == [
        ("a", "q1", 1), ("a", "q2", 2),
        ("b", "q1", 4), ("b", "q3", 6),
    ]


def test_unpivot_excludes_nulls(wide):
    count = wide.execute(
        "SELECT COUNT(*) FROM wide UNPIVOT(v FOR q IN (q1, q2, q3))"
    ).scalar()
    assert count == 4  # two NULL cells dropped


def test_unpivot_custom_labels(wide):
    labels = wide.execute(
        """SELECT DISTINCT q FROM wide
           UNPIVOT(v FOR q IN (q1 AS 'first', q2 AS 'second', q3))
           ORDER BY q"""
    ).column("q")
    assert labels == ["first", "q3", "second"]


def test_unpivot_then_aggregate(wide):
    rows = wide.execute(
        """SELECT quarter, SUM(sales) FROM wide
           UNPIVOT(sales FOR quarter IN (q1, q2, q3))
           GROUP BY quarter ORDER BY quarter"""
    ).rows
    assert rows == [("q1", 5), ("q2", 2), ("q3", 6)]


def test_pivot_unpivot_round_trip_values(wide):
    """UNPIVOT then PIVOT reconstructs the original non-null cells."""
    rows = wide.execute(
        """SELECT * FROM
             (SELECT * FROM wide UNPIVOT(v FOR q IN (q1, q2, q3)))
             PIVOT(SUM(v) FOR q IN ('q1' AS q1, 'q2' AS q2, 'q3' AS q3))
           ORDER BY k"""
    ).rows
    assert rows == [("a", 1, 2, None), ("b", 4, None, 6)]


def test_unpivot_round_trip_printer():
    from repro.sql import parse_statement, to_sql

    sql = "SELECT * FROM t UNPIVOT(v FOR q IN (a, b AS 'bee')) AS u"
    printed = to_sql(parse_statement(sql))
    assert "UNPIVOT" in printed
    assert to_sql(parse_statement(printed)) == printed
