"""CSV import/export and synthetic workload generator tests."""

from __future__ import annotations

import datetime

import pytest

from repro import Database
from repro.storage.csv_io import load_csv, save_csv
from repro.workloads import (
    WorkloadConfig,
    generate_orders,
    load_workload,
    workload_database,
)


def test_load_csv_infers_types(tmp_path, db):
    path = tmp_path / "orders.csv"
    path.write_text(
        "prodName,orderDate,revenue,ratio\n"
        "Happy,2023-11-28,6,0.5\n"
        "Acme,2023-11-27,5,0.25\n"
    )
    assert load_csv(db, "o", path) == 2
    row = db.execute("SELECT prodName, orderDate, revenue, ratio FROM o LIMIT 1").rows[0]
    assert row == ("Happy", datetime.date(2023, 11, 28), 6, 0.5)


def test_load_csv_empty_cells_become_null(tmp_path, db):
    path = tmp_path / "n.csv"
    path.write_text("a,b\n1,\n,x\n")
    load_csv(db, "n", path)
    assert db.execute("SELECT COUNT(*) FROM n WHERE b IS NULL").scalar() == 1


def test_load_csv_type_overrides(tmp_path, db):
    path = tmp_path / "t.csv"
    path.write_text("code\n00123\n")
    load_csv(db, "t", path, column_types={"code": "VARCHAR"})
    assert db.execute("SELECT code FROM t").scalar() == "00123"


def test_load_csv_empty_file_raises(tmp_path, db):
    from repro import CatalogError

    path = tmp_path / "e.csv"
    path.write_text("")
    with pytest.raises(CatalogError):
        load_csv(db, "e", path)


def test_save_and_reload_round_trip(tmp_path, paper_db):
    out = tmp_path / "out.csv"
    count = save_csv(
        paper_db,
        "SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName ORDER BY prodName",
        out,
    )
    assert count == 3
    fresh = Database()
    load_csv(fresh, "summary", out)
    assert fresh.execute("SELECT SUM(r) FROM summary").scalar() == 25


def test_measures_over_csv_loaded_table(tmp_path, db):
    """The paper's 'directory of CSV files' scenario (section 5.4)."""
    path = tmp_path / "sales.csv"
    path.write_text("k,v\na,1\na,2\nb,5\n")
    load_csv(db, "sales", path)
    db.execute("CREATE VIEW ms AS SELECT k, SUM(v) AS MEASURE total FROM sales")
    rows = db.execute("SELECT k, AGGREGATE(total) FROM ms GROUP BY k ORDER BY k").rows
    assert rows == [("a", 3), ("b", 5)]


def test_generator_is_deterministic():
    config = WorkloadConfig(orders=100, seed=7)
    assert generate_orders(config) == generate_orders(config)


def test_generator_respects_sizes():
    config = WorkloadConfig(orders=50, products=5, customers=8)
    customers, products, orders = generate_orders(config)
    assert len(customers) == 8
    assert len(products) == 5
    assert len(orders) == 50


def test_generator_zipf_skew():
    """The most popular product gets far more orders than the median one."""
    _, _, orders = generate_orders(WorkloadConfig(orders=2000, products=20))
    counts: dict[str, int] = {}
    for order in orders:
        counts[order[0]] = counts.get(order[0], 0) + 1
    ranked = sorted(counts.values(), reverse=True)
    assert ranked[0] > 4 * ranked[len(ranked) // 2]


def test_workload_database_loads_three_tables():
    db = workload_database(WorkloadConfig(orders=50))
    assert db.table_names() == ["Customers", "Orders", "Products"]
    assert db.execute("SELECT COUNT(*) FROM Orders").scalar() == 50


def test_workload_revenue_cost_structure():
    db = workload_database(WorkloadConfig(orders=200))
    bad = db.execute("SELECT COUNT(*) FROM Orders WHERE cost > revenue").scalar()
    assert bad == 0


def test_load_workload_into_existing_db(db):
    load_workload(db, WorkloadConfig(orders=10))
    joined = db.execute(
        """SELECT COUNT(*) FROM Orders AS o
           JOIN Customers AS c ON o.custName = c.custName"""
    ).scalar()
    assert joined == 10
