"""Unit tests for name-resolution scopes."""

from __future__ import annotations

import pytest

from repro.errors import BindError
from repro.semantics.scope import RelColumn, Relation, Scope
from repro.types import INTEGER, VARCHAR


def make_relation(alias, names, start=0):
    columns = [RelColumn(n, INTEGER, start + i) for i, n in enumerate(names)]
    return Relation(alias, columns, start, len(names))


def test_qualified_resolution():
    scope = Scope()
    scope.add_relation(make_relation("o", ["a", "b"]))
    resolution = scope.resolve(("o", "b"))
    assert resolution.depth == 0
    assert resolution.column.offset == 1


def test_unqualified_unique_resolution():
    scope = Scope()
    scope.add_relation(make_relation("o", ["a"]))
    scope.add_relation(make_relation("c", ["b"], start=1))
    assert scope.resolve(("b",)).column.offset == 1


def test_unqualified_ambiguous_raises():
    scope = Scope()
    scope.add_relation(make_relation("o", ["k"]))
    scope.add_relation(make_relation("c", ["k"], start=1))
    with pytest.raises(BindError, match="ambiguous"):
        scope.resolve(("k",))


def test_merged_names_prefer_left():
    scope = Scope()
    scope.add_relation(make_relation("o", ["k"]))
    scope.add_relation(make_relation("c", ["k"], start=1))
    scope.merged_names.add("k")
    assert scope.resolve(("k",)).column.offset == 0


def test_case_insensitive_matching():
    scope = Scope()
    scope.add_relation(make_relation("Orders", ["ProdName"]))
    assert scope.resolve(("ORDERS", "prodname")).column.offset == 0


def test_qualified_miss_names_relation():
    scope = Scope()
    scope.add_relation(make_relation("o", ["a"]))
    with pytest.raises(BindError, match="no column 'z'"):
        scope.resolve(("o", "z"))


def test_unknown_qualifier_falls_through_to_parent():
    parent = Scope()
    parent.add_relation(make_relation("outer", ["x"]))
    child = Scope(parent)
    child.add_relation(make_relation("inner", ["y"]))
    resolution = child.resolve(("outer", "x"))
    assert resolution.depth == 1


def test_unqualified_walks_up_with_depth():
    parent = Scope()
    parent.add_relation(make_relation("o", ["deep"]))
    middle = Scope(parent)
    middle.add_relation(make_relation("m", ["mid"]))
    child = Scope(middle)
    child.add_relation(make_relation("i", ["shallow"]))
    assert child.resolve(("shallow",)).depth == 0
    assert child.resolve(("mid",)).depth == 1
    assert child.resolve(("deep",)).depth == 2


def test_inner_shadow_wins():
    parent = Scope()
    parent.add_relation(make_relation("o", ["k"]))
    child = Scope(parent)
    child.add_relation(make_relation("i", ["k"]))
    assert child.resolve(("k",)).depth == 0


def test_unknown_everywhere_raises():
    scope = Scope(Scope())
    with pytest.raises(BindError, match="unknown column"):
        scope.resolve(("ghost",))


def test_duplicate_alias_rejected():
    scope = Scope()
    scope.add_relation(make_relation("x", ["a"]))
    with pytest.raises(BindError, match="duplicate"):
        scope.add_relation(make_relation("X", ["b"], start=1))


def test_relation_of_offset():
    scope = Scope()
    left = make_relation("l", ["a", "b"])
    right = make_relation("r", ["c"], start=2)
    scope.add_relation(left)
    scope.add_relation(right)
    assert scope.relation_of_offset(1) is left
    assert scope.relation_of_offset(2) is right
    assert scope.relation_of_offset(9) is None


def test_measure_columns_have_no_offset():
    relation = Relation(
        "v",
        [RelColumn("dim", VARCHAR, 0), RelColumn("m", INTEGER, None)],
        0,
        1,
    )
    scope = Scope()
    scope.add_relation(relation)
    assert scope.resolve(("m",)).column.offset is None
    assert scope.width == 1
