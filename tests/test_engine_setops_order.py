"""Set operations, ORDER BY, LIMIT/OFFSET, DISTINCT."""

from __future__ import annotations

import pytest

from repro import BindError, Database


@pytest.fixture
def s(db: Database) -> Database:
    db.execute("CREATE TABLE p (x INTEGER)")
    db.execute("CREATE TABLE q (x INTEGER)")
    db.execute("INSERT INTO p VALUES (1), (2), (2), (3)")
    db.execute("INSERT INTO q VALUES (2), (3), (3), (4)")
    return db


def test_union_distinct(s):
    rows = s.execute("SELECT x FROM p UNION SELECT x FROM q ORDER BY 1").rows
    assert rows == [(1,), (2,), (3,), (4,)]


def test_union_all(s):
    rows = s.execute("SELECT x FROM p UNION ALL SELECT x FROM q").rows
    assert len(rows) == 8


def test_intersect_distinct(s):
    rows = s.execute("SELECT x FROM p INTERSECT SELECT x FROM q ORDER BY 1").rows
    assert rows == [(2,), (3,)]


def test_intersect_all_bag_semantics(s):
    rows = s.execute("SELECT x FROM p INTERSECT ALL SELECT x FROM q").rows
    assert sorted(rows) == [(2,), (3,)]


def test_except_distinct(s):
    rows = s.execute("SELECT x FROM p EXCEPT SELECT x FROM q").rows
    assert rows == [(1,)]


def test_except_all_bag_semantics(s):
    rows = s.execute("SELECT x FROM p EXCEPT ALL SELECT x FROM q ORDER BY 1").rows
    assert rows == [(1,), (2,)]


def test_setop_arity_mismatch_raises(s):
    with pytest.raises(BindError):
        s.execute("SELECT x, x FROM p UNION SELECT x FROM q")


def test_setop_order_by_name_and_limit(s):
    rows = s.execute(
        "SELECT x FROM p UNION SELECT x FROM q ORDER BY x DESC LIMIT 2"
    ).rows
    assert rows == [(4,), (3,)]


def test_union_of_values(db):
    rows = db.execute("VALUES (1), (5) UNION ALL VALUES (2)").rows
    assert sorted(rows) == [(1,), (2,), (5,)]


def test_order_by_ordinal(s):
    rows = s.execute("SELECT x, -x FROM p ORDER BY 2").rows
    assert [r[0] for r in rows] == [3, 2, 2, 1]


def test_order_by_alias(s):
    rows = s.execute("SELECT -x AS neg FROM p ORDER BY neg").rows
    assert [r[0] for r in rows] == [-3, -2, -2, -1]


def test_order_by_expression_not_in_select(s):
    rows = s.execute("SELECT x FROM p ORDER BY -x").rows
    assert [r[0] for r in rows] == [3, 2, 2, 1]
    # The hidden sort column is stripped from the output.
    assert s.execute("SELECT x FROM p ORDER BY -x").column_names == ["x"]


def test_order_by_nulls_default_last_asc(db):
    db.execute("CREATE TABLE n (x INTEGER)")
    db.execute("INSERT INTO n VALUES (2), (NULL), (1)")
    assert db.execute("SELECT x FROM n ORDER BY x").rows == [(1,), (2,), (None,)]


def test_order_by_nulls_default_first_desc(db):
    db.execute("CREATE TABLE n (x INTEGER)")
    db.execute("INSERT INTO n VALUES (2), (NULL), (1)")
    assert db.execute("SELECT x FROM n ORDER BY x DESC").rows == [(None,), (2,), (1,)]


def test_order_by_explicit_nulls(db):
    db.execute("CREATE TABLE n (x INTEGER)")
    db.execute("INSERT INTO n VALUES (2), (NULL), (1)")
    assert db.execute("SELECT x FROM n ORDER BY x NULLS FIRST").rows == [
        (None,), (1,), (2,),
    ]


def test_limit_and_offset(s):
    rows = s.execute("SELECT x FROM p ORDER BY x LIMIT 2 OFFSET 1").rows
    assert rows == [(2,), (2,)]


def test_limit_zero(s):
    assert s.execute("SELECT x FROM p LIMIT 0").rows == []


def test_offset_beyond_end(s):
    assert s.execute("SELECT x FROM p OFFSET 100").rows == []


def test_distinct(s):
    rows = s.execute("SELECT DISTINCT x FROM p ORDER BY x").rows
    assert rows == [(1,), (2,), (3,)]


def test_distinct_multi_column(db):
    db.execute("CREATE TABLE d (a INTEGER, b INTEGER)")
    db.execute("INSERT INTO d VALUES (1, 1), (1, 1), (1, 2)")
    assert len(db.execute("SELECT DISTINCT a, b FROM d").rows) == 2


def test_distinct_with_hidden_sort_column_rejected(s):
    with pytest.raises(BindError):
        s.execute("SELECT DISTINCT x FROM p ORDER BY -x")


def test_order_by_multiple_keys_mixed_direction(db):
    db.execute("CREATE TABLE m (a INTEGER, b INTEGER)")
    db.execute("INSERT INTO m VALUES (1, 1), (1, 2), (2, 1)")
    rows = db.execute("SELECT a, b FROM m ORDER BY a DESC, b ASC").rows
    assert rows == [(2, 1), (1, 1), (1, 2)]
