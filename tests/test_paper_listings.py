"""E01-E12: exact reproduction of every table and listing in the paper.

Each test corresponds to a row of the per-experiment index in DESIGN.md.
Where the paper prints results (Listings 4 and 8), the expected values are
the paper's own numbers.
"""

from __future__ import annotations

import datetime

import pytest

from repro import Database, UnsupportedError
from repro.workloads.paper_data import CUSTOMERS, ORDERS


def test_e01_paper_tables_load(paper_db):
    assert paper_db.execute("SELECT COUNT(*) FROM Customers").scalar() == 3
    assert paper_db.execute("SELECT COUNT(*) FROM Orders").scalar() == 5
    assert len(CUSTOMERS) == 3 and len(ORDERS) == 5


def test_e02_listing1_summarize_orders(paper_db):
    result = paper_db.execute(
        """
        SELECT prodName, COUNT(*) AS c,
               (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
        FROM Orders GROUP BY prodName ORDER BY prodName
        """
    )
    assert [(r[0], r[1], round(r[2], 2)) for r in result.rows] == [
        ("Acme", 1, 0.60),
        ("Happy", 3, 0.47),
        ("Whizz", 1, 0.67),
    ]


def test_e03_listing2_view_average_of_averages_anomaly(paper_db):
    """The motivating bug: AVG over the SummarizedOrders view does NOT weigh
    each order equally, so it disagrees with the true margin (section 3.1)."""
    paper_db.execute(
        """
        CREATE VIEW SummarizedOrders AS
        SELECT prodName, orderDate,
               (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
        FROM Orders GROUP BY prodName, orderDate
        """
    )
    avg_of_avgs = dict(
        paper_db.execute(
            "SELECT prodName, AVG(profitMargin) FROM SummarizedOrders GROUP BY prodName"
        ).rows
    )
    true_margin = dict(
        paper_db.execute(
            """SELECT prodName, (SUM(revenue) - SUM(cost)) / SUM(revenue)
               FROM Orders GROUP BY prodName"""
        ).rows
    )
    # Happy has orders on three dates with different margins: the view's
    # average-of-averages differs from the correct revenue-weighted margin.
    assert avg_of_avgs["Happy"] != pytest.approx(true_margin["Happy"])
    # Single-date products agree, which is what makes the bug insidious.
    assert avg_of_avgs["Acme"] == pytest.approx(true_margin["Acme"])


def test_e04_listing4_aggregate_measure(orders_db):
    """Paper Listing 4's printed output, exactly."""
    result = orders_db.execute(
        """
        SELECT prodName, AGGREGATE(profitMargin), COUNT(*)
        FROM EnhancedOrders GROUP BY prodName ORDER BY prodName
        """
    )
    assert [(r[0], round(r[1], 2), r[2]) for r in result.rows] == [
        ("Acme", 0.60, 1),
        ("Happy", 0.47, 3),
        ("Whizz", 0.67, 1),
    ]
    assert result.column_names[1] == "profitMargin"


def test_e05_listing5_expansion_matches_interpreter(orders_db):
    query = """SELECT prodName, AGGREGATE(profitMargin) AS pm, COUNT(*) AS c
               FROM EnhancedOrders GROUP BY prodName ORDER BY prodName"""
    expanded = orders_db.expand(query)
    # The expansion is a correlated scalar subquery over Orders, as in
    # Listing 5.
    assert "SELECT" in expanded and "Orders" in expanded
    assert "IS NOT DISTINCT FROM" in expanded
    assert "MEASURE" not in expanded.upper() or "AS MEASURE" not in expanded
    assert orders_db.execute(expanded).rows == orders_db.execute(query).rows


def test_e06_listing6_proportion_of_total(paper_db):
    result = paper_db.execute(
        """
        SELECT prodName, sumRevenue,
               sumRevenue / sumRevenue AT (ALL prodName) AS proportionOfTotalRevenue
        FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
        GROUP BY prodName ORDER BY prodName
        """
    )
    assert [(r[0], r[1], round(r[2], 2)) for r in result.rows] == [
        ("Acme", 5, 0.20),
        ("Happy", 17, 0.68),
        ("Whizz", 3, 0.12),
    ]


def test_e07_listing7_set_current_previous_year(paper_db):
    result = paper_db.execute(
        """
        SELECT prodName, orderYear, profitMargin,
               profitMargin AT (SET orderYear = CURRENT orderYear - 1)
                 AS profitMarginLastYear
        FROM (SELECT *,
                (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
                YEAR(orderDate) AS orderYear
              FROM Orders)
        WHERE orderYear = 2024
        GROUP BY prodName, orderYear
        """
    )
    assert len(result.rows) == 1
    name, year, margin, last_year = result.rows[0]
    assert (name, year) == ("Happy", 2024)
    assert margin == pytest.approx(3 / 7)  # (7-4)/7
    assert last_year == pytest.approx(2 / 6)  # (6-4)/6, reaching removed rows


LISTING8 = """
SELECT o.prodName, COUNT(*) AS c,
       AGGREGATE(o.sumRevenue) AS rAgg,
       o.sumRevenue AT (VISIBLE) AS rViz,
       o.sumRevenue AS r
FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
WHERE o.custName <> 'Bob'
GROUP BY ROLLUP(o.prodName)
ORDER BY o.prodName NULLS LAST
"""


def test_e08_listing8_visible_rollup(paper_db):
    """Paper Listing 8's printed output, exactly."""
    result = paper_db.execute(LISTING8)
    assert result.rows == [
        ("Happy", 2, 13, 13, 17),
        ("Whizz", 1, 3, 3, 3),
        (None, 3, 16, 16, 25),
    ]


def test_e08_aggregate_equals_visible(paper_db):
    """AGGREGATE(m) is EVAL(m AT (VISIBLE)) (section 3.3)."""
    result = paper_db.execute(LISTING8)
    for row in result.rows:
        assert row[2] == row[3]


LISTING9 = """
WITH EnhancedCustomers AS (
  SELECT *, AVG(custAge) AS MEASURE avgAge FROM Customers)
SELECT o.prodName,
       COUNT(*) AS orderCount,
       AVG(c.custAge) AS weightedAvgAge,
       c.avgAge AS avgAge,
       c.avgAge AT (VISIBLE) AS visibleAvgAge
FROM Orders AS o
JOIN EnhancedCustomers AS c USING (custName)
WHERE c.custAge >= 18
GROUP BY o.prodName
ORDER BY o.prodName
"""


def test_e09_listing9_join_semantics(paper_db):
    result = paper_db.execute(LISTING9)
    assert [tuple(r[:2]) for r in result.rows] == [("Acme", 1), ("Happy", 3)]
    acme, happy = result.rows
    # Weighted (traditional SQL) average: per joined row.
    assert acme[2] == pytest.approx(41.0)
    assert happy[2] == pytest.approx((23 + 23 + 41) / 3)
    # Unweighted measure default: all customers, ignoring WHERE and join.
    assert acme[3] == pytest.approx((23 + 41 + 17) / 3)
    assert happy[3] == pytest.approx((23 + 41 + 17) / 3)
    # VISIBLE: customers visible in this group (>= 18, joined to the group).
    assert acme[4] == pytest.approx(41.0)
    assert happy[4] == pytest.approx((23 + 41) / 2)


def test_e09_whizz_absent(paper_db):
    """Celia is under 18, so Whizz has no visible orders at all."""
    names = [r[0] for r in paper_db.execute(LISTING9).rows]
    assert "Whizz" not in names


LISTING10 = """
SELECT prodName, YEAR(orderDate) AS orderYear,
       sumRevenue / sumRevenue AT (SET orderYear = CURRENT orderYear - 1) AS ratio
FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue,
             YEAR(orderDate) AS orderYear
      FROM Orders)
GROUP BY prodName, YEAR(orderDate)
ORDER BY prodName, orderYear
"""


def test_e10_listing10_year_over_year(paper_db):
    result = paper_db.execute(LISTING10)
    by_key = {(r[0], r[1]): r[2] for r in result.rows}
    assert by_key[("Happy", 2023)] == pytest.approx(6 / 4)
    assert by_key[("Happy", 2024)] == pytest.approx(7 / 6)
    # No previous year: SUM over the empty context is NULL, so is the ratio.
    assert by_key[("Happy", 2022)] is None
    assert by_key[("Acme", 2023)] is None
    assert by_key[("Whizz", 2023)] is None


def test_e10_listing11_expansion_equivalence(paper_db):
    expanded = paper_db.expand(LISTING10)
    assert "YEAR" in expanded and "- 1" in expanded  # the shifted-year filter
    assert paper_db.execute(expanded).rows == paper_db.execute(LISTING10).rows


LISTING12_Q1 = """
SELECT o.prodName, o.orderDate FROM Orders AS o
WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
                   WHERE o1.prodName = o.prodName)
ORDER BY 1, 2
"""
LISTING12_Q2 = """
SELECT o.prodName, o.orderDate FROM Orders AS o
LEFT JOIN (SELECT prodName, AVG(revenue) AS avgRevenue
           FROM Orders GROUP BY prodName) AS o2
  ON o.prodName = o2.prodName
WHERE o.revenue > o2.avgRevenue
ORDER BY 1, 2
"""
LISTING12_Q3 = """
SELECT o.prodName, o.orderDate FROM
  (SELECT prodName, revenue, orderDate,
          AVG(revenue) OVER (PARTITION BY prodName) AS avgRevenue
   FROM Orders) AS o
WHERE o.revenue > o.avgRevenue
ORDER BY 1, 2
"""
LISTING12_Q4 = """
SELECT o.prodName, o.orderDate FROM
  (SELECT prodName, orderDate, revenue,
          AVG(revenue) AS MEASURE avgRevenue
   FROM Orders) AS o
WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)
ORDER BY 1, 2
"""
LISTING12_EXPECTED = [
    ("Happy", datetime.date(2023, 11, 28)),
    ("Happy", datetime.date(2024, 11, 28)),
]


@pytest.mark.parametrize(
    "query", [LISTING12_Q1, LISTING12_Q2, LISTING12_Q3, LISTING12_Q4],
    ids=["correlated-subquery", "self-join", "window-aggregate", "measures"],
)
def test_e11_listing12_equivalent_queries(paper_db, query):
    assert paper_db.execute(query).rows == LISTING12_EXPECTED


def test_e11_listing12_measure_rewrites(paper_db):
    """The measures formulation rewrites to both query 1 (subquery strategy)
    and query 3 (window strategy) shapes, all with identical results."""
    sub = paper_db.expand(LISTING12_Q4, strategy="subquery")
    win = paper_db.expand(LISTING12_Q4, strategy="window")
    assert "OVER" not in sub and "OVER" in win
    assert paper_db.execute(sub).rows == LISTING12_EXPECTED
    assert paper_db.execute(win).rows == LISTING12_EXPECTED


# -- E12: the full Table 3 modifier matrix -----------------------------------

E12_VIEW = """
CREATE VIEW mv AS
SELECT prodName, custName, YEAR(orderDate) AS orderYear,
       SUM(revenue) AS MEASURE r
FROM Orders
"""


@pytest.fixture
def modifier_db(paper_db):
    paper_db.execute(E12_VIEW)
    return paper_db


def test_e12_all_bare_clears_everything(modifier_db):
    rows = modifier_db.execute(
        """SELECT prodName, r AT (ALL) AS total FROM mv
           GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert rows == [("Acme", 25), ("Happy", 25), ("Whizz", 25)]


def test_e12_all_dimension_removes_one_term(modifier_db):
    rows = modifier_db.execute(
        """SELECT prodName, custName, r, r AT (ALL custName) AS byProd
           FROM mv GROUP BY prodName, custName ORDER BY prodName, custName"""
    ).rows
    by_key = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    assert by_key[("Happy", "Alice")] == (13, 17)
    assert by_key[("Happy", "Bob")] == (4, 17)
    assert by_key[("Acme", "Bob")] == (5, 5)


def test_e12_set_pins_dimension(modifier_db):
    rows = modifier_db.execute(
        """SELECT prodName, r AT (SET prodName = 'Happy') AS happy
           FROM mv GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert all(r[1] == 17 for r in rows)


def test_e12_set_with_current_arithmetic(modifier_db):
    rows = modifier_db.execute(
        """SELECT orderYear, r,
                  r AT (SET orderYear = CURRENT orderYear - 1) AS prev
           FROM mv GROUP BY orderYear ORDER BY orderYear"""
    ).rows
    assert rows == [(2022, 4, None), (2023, 14, 4), (2024, 7, 14)]


def test_e12_visible_applies_where(modifier_db):
    rows = modifier_db.execute(
        """SELECT prodName, r AT (VISIBLE) AS viz, r
           FROM mv WHERE custName = 'Alice'
           GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert rows == [("Happy", 13, 17)]


def test_e12_where_replaces_context(modifier_db):
    rows = modifier_db.execute(
        """SELECT prodName, r AT (WHERE orderYear = 2023) AS y23
           FROM mv GROUP BY prodName ORDER BY prodName"""
    ).rows
    # WHERE *sets* the context: the group's prodName term is replaced.
    assert rows == [("Acme", 14), ("Happy", 14), ("Whizz", 14)]


def test_e12_modifier_sequence_left_to_right(modifier_db):
    """cse AT (m1 m2) == (cse AT (m2)) AT (m1) (section 3.5)."""
    combined = modifier_db.execute(
        """SELECT prodName,
                  r AT (ALL SET prodName = 'Happy') AS v
           FROM mv GROUP BY prodName ORDER BY prodName"""
    ).rows
    nested = modifier_db.execute(
        """SELECT prodName,
                  (r AT (SET prodName = 'Happy')) AT (ALL) AS v
           FROM mv GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert combined == nested == [("Acme", 17), ("Happy", 17), ("Whizz", 17)]


def test_e12_adhoc_dimension_expression(modifier_db):
    """Expressions over dimensions act as ad hoc dimensions (section 3.5)."""
    rows = modifier_db.execute(
        """SELECT prodName, sr AT (SET YEAR(orderDate) = 2023) AS y23
           FROM (SELECT *, SUM(revenue) AS MEASURE sr FROM Orders)
           GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert rows == [("Acme", 5), ("Happy", 6), ("Whizz", 3)]


def test_e08_listing8_expands_statically(paper_db):
    """Grouping sets expand as a UNION ALL of plain branches, so even
    Listing 8 has a measure-free SQL form that reproduces the paper's table."""
    expanded = paper_db.expand(LISTING8)
    assert "UNION ALL" in expanded
    assert paper_db.execute(expanded).rows == paper_db.execute(LISTING8).rows


# -- profiling the paper listings ---------------------------------------------

LISTING1 = """
SELECT prodName, COUNT(*) AS c,
       (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
FROM Orders GROUP BY prodName ORDER BY prodName
"""
LISTING2_QUERY = """
SELECT prodName, AVG(profitMargin) FROM SummarizedOrders
GROUP BY prodName ORDER BY prodName
"""
LISTING4 = """
SELECT prodName, AGGREGATE(profitMargin), COUNT(*)
FROM EnhancedOrders GROUP BY prodName ORDER BY prodName
"""
LISTING6 = """
SELECT prodName, sumRevenue,
       sumRevenue / sumRevenue AT (ALL prodName) AS proportionOfTotalRevenue
FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue FROM Orders) AS o
GROUP BY prodName ORDER BY prodName
"""
LISTING7 = """
SELECT prodName, orderYear, profitMargin,
       profitMargin AT (SET orderYear = CURRENT orderYear - 1)
         AS profitMarginLastYear
FROM (SELECT *,
        (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin,
        YEAR(orderDate) AS orderYear
      FROM Orders)
WHERE orderYear = 2024 GROUP BY prodName, orderYear
"""
E12_MATRIX = """
SELECT prodName, r AS base, r AT (ALL) AS grandTotal,
       r AT (ALL custName) AS allCust,
       r AT (SET orderYear = CURRENT orderYear - 1) AS lastYear,
       r AT (VISIBLE) AS vis,
       r AT (WHERE orderYear = 2023) AS y2023
FROM mv WHERE custName <> 'Bob'
GROUP BY prodName ORDER BY prodName
"""
E12_ALL_BARE = """
SELECT prodName, r AT (ALL) AS total FROM mv
GROUP BY prodName ORDER BY prodName
"""
E12_ADHOC = """
SELECT prodName, sr AT (SET YEAR(orderDate) = 2023) AS y23
FROM (SELECT *, SUM(revenue) AS MEASURE sr FROM Orders)
GROUP BY prodName ORDER BY prodName
"""

#: All fifteen paper listings the acceptance criteria name, by id.
ALL_LISTINGS = {
    "listing1": LISTING1,
    "listing2": LISTING2_QUERY,
    "listing4": LISTING4,
    "listing6": LISTING6,
    "listing7": LISTING7,
    "listing8": LISTING8,
    "listing9": LISTING9,
    "listing10": LISTING10,
    "listing12-q1": LISTING12_Q1,
    "listing12-q2": LISTING12_Q2,
    "listing12-q3": LISTING12_Q3,
    "listing12-q4": LISTING12_Q4,
    "table3-matrix": E12_MATRIX,
    "table3-all-bare": E12_ALL_BARE,
    "table3-adhoc-dim": E12_ADHOC,
}


def _full_db(**kwargs) -> Database:
    from repro.workloads.paper_data import load_paper_tables

    db = Database(**kwargs)
    load_paper_tables(db)
    db.execute(
        """CREATE VIEW EnhancedOrders AS
           SELECT orderDate, prodName,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue)
                    AS MEASURE profitMargin
           FROM Orders"""
    )
    db.execute(
        """CREATE VIEW SummarizedOrders AS
           SELECT prodName, orderDate,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS profitMargin
           FROM Orders GROUP BY prodName, orderDate"""
    )
    db.execute(E12_VIEW)
    return db


@pytest.fixture(scope="module")
def listings_profiled_db() -> Database:
    db = _full_db()
    db.profile_enabled = True
    return db


@pytest.fixture(scope="module")
def listings_plain_db() -> Database:
    return _full_db()


@pytest.mark.parametrize("listing", list(ALL_LISTINGS))
def test_every_listing_profile_on_off_identical(
    listing, listings_profiled_db, listings_plain_db
):
    """Profiling is pure observation: every paper listing returns the exact
    same rows with profile=True and profile=False."""
    sql = ALL_LISTINGS[listing]
    profiled = listings_profiled_db.execute(sql)
    plain = listings_plain_db.execute(sql)
    assert profiled.rows == plain.rows
    profile = listings_profiled_db.last_profile()
    assert profile is not None
    assert profile.result_rows == len(plain.rows)
    assert profile.operator_tree["rows_out"] == len(plain.rows)


@pytest.mark.parametrize("listing", list(ALL_LISTINGS))
def test_every_listing_explain_analyze_renders(listing, listings_plain_db):
    """EXPLAIN ANALYZE renders an annotated operator tree — per-operator
    rows and timing — for all fifteen paper listings."""
    result = listings_plain_db.execute(
        f"EXPLAIN ANALYZE {ALL_LISTINGS[listing]}"
    )
    lines = [line for (line,) in result.rows]
    operator_lines = [
        line for line in lines if "rows=" in line and "time=" in line
    ]
    assert operator_lines, f"no annotated operators for {listing}"
    assert any(line.startswith("phases:") for line in lines)
    assert any(line.startswith("counters:") for line in lines)


def test_every_listing_acquires_exactly_one_fingerprint_row():
    """Statement statistics attribute each paper listing to exactly one
    fingerprint: two runs of a listing collapse into one row with
    calls=2, the fifteen listings stay distinct from each other, and
    replaying identical queries never registers a plan flip."""
    db = _full_db(telemetry=True)
    db.reset_stats()  # drop the setup DDL's fingerprints
    for sql in ALL_LISTINGS.values():
        db.execute(sql)
        db.execute(sql)
    entries = db.stat_statements()
    assert len(entries) == len(ALL_LISTINGS)
    assert len({e["fingerprint"] for e in entries}) == len(ALL_LISTINGS)
    for entry in entries:
        assert entry["calls"] == 2
        assert entry["errors"] == 0
        assert entry["last_plan_hash"] is not None
    assert db.plan_flips() == []
