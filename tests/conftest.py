"""Shared fixtures: fresh databases, the paper's tables, common views."""

from __future__ import annotations

import pytest

from repro import Database
from repro.analysis import validation_enabled
from repro.workloads.paper_data import load_paper_tables


def pytest_report_header(config) -> str:
    """Show whether the plan/IR validator is active for this run.

    ``Database`` reads ``REPRO_VALIDATE`` at construction, so running the
    suite as ``REPRO_VALIDATE=1 pytest tests/`` checks every bound and
    optimized plan against the structural invariants (CI does one such run).
    """
    state = "on" if validation_enabled() else "off (set REPRO_VALIDATE=1)"
    return f"repro plan validator: {state}"


@pytest.fixture
def db() -> Database:
    """An empty database."""
    return Database()


@pytest.fixture
def validating_db() -> Database:
    """A database with the plan/IR validator forced on, env aside."""
    return Database(validate=True)


@pytest.fixture
def paper_db() -> Database:
    """A database loaded with the paper's Customers and Orders tables."""
    database = Database()
    load_paper_tables(database)
    return database


@pytest.fixture
def orders_db(paper_db: Database) -> Database:
    """Paper tables plus the EnhancedOrders view (paper Listing 3)."""
    paper_db.execute(
        """
        CREATE VIEW EnhancedOrders AS
        SELECT orderDate, prodName,
               (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
        FROM Orders
        """
    )
    return paper_db


def rows(db: Database, sql: str) -> list[tuple]:
    """Execute and return rows (test helper)."""
    return db.execute(sql).rows


def scalar(db: Database, sql: str):
    return db.execute(sql).scalar()
