"""Shared fixtures: fresh databases, the paper's tables, common views."""

from __future__ import annotations

import pytest

from repro import Database
from repro.workloads.paper_data import load_paper_tables


@pytest.fixture
def db() -> Database:
    """An empty database."""
    return Database()


@pytest.fixture
def paper_db() -> Database:
    """A database loaded with the paper's Customers and Orders tables."""
    database = Database()
    load_paper_tables(database)
    return database


@pytest.fixture
def orders_db(paper_db: Database) -> Database:
    """Paper tables plus the EnhancedOrders view (paper Listing 3)."""
    paper_db.execute(
        """
        CREATE VIEW EnhancedOrders AS
        SELECT orderDate, prodName,
               (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE profitMargin
        FROM Orders
        """
    )
    return paper_db


def rows(db: Database, sql: str) -> list[tuple]:
    """Execute and return rows (test helper)."""
    return db.execute(sql).rows


def scalar(db: Database, sql: str):
    return db.execute(sql).scalar()
