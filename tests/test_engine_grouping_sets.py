"""ROLLUP, CUBE, GROUPING SETS and the GROUPING/GROUPING_ID functions."""

from __future__ import annotations

import pytest

from repro import BindError, Database


@pytest.fixture
def sales(db: Database) -> Database:
    db.execute("CREATE TABLE sales (region VARCHAR, product VARCHAR, amount INTEGER)")
    db.execute(
        """INSERT INTO sales VALUES
           ('north', 'a', 10), ('north', 'b', 20),
           ('south', 'a', 5), ('south', 'b', 7)"""
    )
    return db


def test_rollup_two_levels(sales):
    rows = sales.execute(
        """SELECT region, product, SUM(amount) FROM sales
           GROUP BY ROLLUP(region, product)
           ORDER BY region NULLS LAST, product NULLS LAST"""
    ).rows
    assert rows == [
        ("north", "a", 10),
        ("north", "b", 20),
        ("north", None, 30),
        ("south", "a", 5),
        ("south", "b", 7),
        ("south", None, 12),
        (None, None, 42),
    ]


def test_cube_produces_all_combinations(sales):
    rows = sales.execute(
        """SELECT region, product, SUM(amount) FROM sales
           GROUP BY CUBE(region, product)"""
    ).rows
    # 4 detail + 2 region subtotals + 2 product subtotals + 1 grand total.
    assert len(rows) == 9
    assert (None, "a", 15) in rows
    assert (None, None, 42) in rows


def test_grouping_sets_explicit(sales):
    rows = sales.execute(
        """SELECT region, product, SUM(amount) FROM sales
           GROUP BY GROUPING SETS ((region), (product), ())"""
    ).rows
    assert len(rows) == 5
    assert ("north", None, 30) in rows
    assert (None, "b", 27) in rows
    assert (None, None, 42) in rows


def test_grouping_function_distinguishes_null_key_from_rollup(db):
    db.execute("CREATE TABLE g (k VARCHAR, x INTEGER)")
    db.execute("INSERT INTO g VALUES ('a', 1), (NULL, 2)")
    rows = db.execute(
        """SELECT k, GROUPING(k), SUM(x) FROM g
           GROUP BY ROLLUP(k) ORDER BY 2, k NULLS LAST"""
    ).rows
    # The NULL data group has GROUPING 0; the rollup total has GROUPING 1.
    assert rows == [("a", 0, 1), (None, 0, 2), (None, 1, 3)]


def test_grouping_id_bitmap(sales):
    rows = sales.execute(
        """SELECT region, product, GROUPING_ID(region, product) AS gid
           FROM sales GROUP BY ROLLUP(region, product) ORDER BY gid, region, product"""
    ).rows
    gids = sorted({r[2] for r in rows})
    assert gids == [0, 1, 3]


def test_mixed_group_by_and_rollup(sales):
    rows = sales.execute(
        """SELECT region, product, SUM(amount) FROM sales
           GROUP BY region, ROLLUP(product)
           ORDER BY region, product NULLS LAST"""
    ).rows
    assert ("north", None, 30) in rows
    assert ("south", None, 12) in rows
    assert (None, None, 42) not in rows  # region never rolls up


def test_rollup_empty_table_emits_grand_total(db):
    db.execute("CREATE TABLE empty (k VARCHAR, x INTEGER)")
    rows = db.execute(
        "SELECT k, COUNT(*) FROM empty GROUP BY ROLLUP(k)"
    ).rows
    assert rows == [(None, 0)]


def test_grouping_outside_group_by_rejected(sales):
    with pytest.raises(BindError):
        sales.execute("SELECT GROUPING(region) FROM sales")


def test_grouping_of_non_key_rejected(sales):
    with pytest.raises(BindError):
        sales.execute(
            "SELECT GROUPING(amount) FROM sales GROUP BY ROLLUP(region)"
        )


def test_grouping_in_having(sales):
    rows = sales.execute(
        """SELECT region, SUM(amount) FROM sales
           GROUP BY ROLLUP(region)
           HAVING GROUPING(region) = 1"""
    ).rows
    assert rows == [(None, 42)]


def test_grouping_in_case_for_total_labels(sales):
    rows = sales.execute(
        """SELECT CASE WHEN GROUPING(region) = 1 THEN 'TOTAL' ELSE region END AS label,
                  SUM(amount)
           FROM sales GROUP BY ROLLUP(region) ORDER BY 2"""
    ).rows
    assert rows[-1] == ("TOTAL", 42)


def test_rollup_of_expression(sales):
    rows = sales.execute(
        """SELECT UPPER(region), SUM(amount) FROM sales
           GROUP BY ROLLUP(UPPER(region))
           ORDER BY 1 NULLS LAST"""
    ).rows
    assert rows == [("NORTH", 30), ("SOUTH", 12), (None, 42)]
