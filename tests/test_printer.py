"""Printer tests: canonical output and parse -> print -> parse stability."""

from __future__ import annotations

import pytest

from repro.sql import ast, parse_expression, parse_statement, to_sql
from repro.sql.printer import format_literal

ROUND_TRIP_STATEMENTS = [
    "SELECT 1",
    "SELECT a, b AS c FROM t",
    "SELECT DISTINCT a FROM t WHERE x > 1 GROUP BY a HAVING COUNT(*) > 2 "
    "ORDER BY a DESC NULLS FIRST LIMIT 3 OFFSET 1",
    "SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c USING (k)",
    "SELECT 1 FROM a CROSS JOIN b",
    "SELECT x FROM (SELECT a AS x FROM t) AS sub",
    "WITH c AS (SELECT 1 AS x) SELECT x FROM c",
    "SELECT a FROM t UNION ALL SELECT b FROM u",
    "SELECT a FROM t INTERSECT SELECT b FROM u",
    "SELECT a FROM t EXCEPT SELECT b FROM u ORDER BY 1 LIMIT 5",
    "VALUES (1, 'a'), (2, 'b')",
    "SELECT CASE WHEN a THEN 1 ELSE 2 END FROM t",
    "SELECT CASE x WHEN 1 THEN 'a' END FROM t",
    "SELECT CAST(a AS DOUBLE), COALESCE(a, b, 0) FROM t",
    "SELECT x IS NULL, y IS NOT NULL, a IS NOT DISTINCT FROM b FROM t",
    "SELECT a BETWEEN 1 AND 2, b NOT IN (1, 2), c LIKE 'x%' ESCAPE '!' FROM t",
    "SELECT COUNT(*), SUM(DISTINCT x) FILTER (WHERE y > 0) FROM t",
    "SELECT AVG(x) OVER (PARTITION BY a ORDER BY b ROWS BETWEEN 1 PRECEDING "
    "AND 1 FOLLOWING) FROM t",
    "SELECT ROW_NUMBER() OVER (ORDER BY a) FROM t",
    "SELECT SUM(x) AS MEASURE m, a FROM t",
    "SELECT m AT (ALL a, b SET c = CURRENT c - 1 VISIBLE WHERE d > 2) FROM v",
    "SELECT AGGREGATE(m) FROM v GROUP BY ROLLUP(a, b)",
    "SELECT 1 FROM t GROUP BY GROUPING SETS ((a, b), (a), ())",
    "SELECT 1 FROM t GROUP BY CUBE(a, b)",
    "CREATE TABLE t (a INTEGER, b VARCHAR, c DATE)",
    "CREATE OR REPLACE VIEW v (x) AS SELECT a FROM t",
    "DROP VIEW IF EXISTS v",
    "INSERT INTO t (a, b) VALUES (1, 'x')",
    "INSERT INTO t SELECT * FROM u",
    "SELECT x FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)",
    "SELECT DATE '2024-01-31', -x, NOT a FROM t",
    "EXPLAIN EXPAND SELECT AGGREGATE(m) FROM v GROUP BY a",
    "EXPLAIN (TYPES) SELECT a FROM t",
    "EXPLAIN (LINT, TYPES) SELECT a FROM t",
    "EXPLAIN (ANALYZE, TYPES) SELECT a FROM t",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_round_trip_statement(sql):
    """print(parse(sql)) re-parses to SQL that prints identically."""
    first = to_sql(parse_statement(sql))
    second = to_sql(parse_statement(first))
    assert first == second


def test_format_literal_string_escaping():
    assert format_literal("it's") == "'it''s'"


def test_format_literal_null_and_booleans():
    assert format_literal(None) == "NULL"
    assert format_literal(True) == "TRUE"
    assert format_literal(False) == "FALSE"


def test_format_literal_date():
    import datetime

    assert format_literal(datetime.date(2024, 2, 29)) == "DATE '2024-02-29'"


def test_quoted_identifier_in_output():
    stmt = parse_statement('SELECT "weird name" FROM t')
    assert '"weird name"' in to_sql(stmt)


def test_expression_precedence_preserved():
    """The printer parenthesizes, so precedence survives the round trip."""
    expr = parse_expression("1 + 2 * 3")
    reparsed = parse_expression(to_sql(expr))
    assert isinstance(reparsed, ast.Binary) and reparsed.op == "+"
    assert reparsed.right.op == "*"


def test_at_modifier_order_preserved():
    expr = parse_expression("m AT (ALL a SET b = 1)")
    reparsed = parse_expression(to_sql(expr))
    assert [type(m).__name__ for m in reparsed.modifiers] == [
        "AllModifier",
        "SetModifier",
    ]


def test_as_measure_round_trip():
    query = parse_statement("SELECT SUM(x) AS MEASURE m FROM t")
    printed = to_sql(query)
    assert "AS MEASURE m" in printed
    assert parse_statement(printed).query.items[0].is_measure
