"""Cross-feature integration: parameters + measures + pivot + qualify +
within-distinct composed in single queries."""

from __future__ import annotations

import pytest

from repro import Database
from repro.workloads.paper_data import load_paper_tables


@pytest.fixture
def full(db: Database) -> Database:
    load_paper_tables(db)
    db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, custName, YEAR(orderDate) AS y,
                  SUM(revenue) AS MEASURE rev FROM Orders"""
    )
    return db


def test_params_in_at_where(full):
    # WHERE replaces the context, so the product correlation is explicit.
    rows = full.execute(
        """SELECT prodName, rev AT (WHERE prodName = eo.prodName AND custName = ?) AS v
           FROM eo GROUP BY prodName ORDER BY prodName""",
        ("Bob",),
    ).rows
    assert rows == [("Acme", 5), ("Happy", 4), ("Whizz", None)]


def test_param_in_replacing_at_where_is_global(full):
    """Without explicit correlation the parameterized WHERE defines the
    whole context: every group sees Bob's global total."""
    rows = full.execute(
        "SELECT prodName, rev AT (WHERE custName = ?) AS v FROM eo GROUP BY prodName",
        ("Bob",),
    ).rows
    assert all(r[1] == 9 for r in rows)


def test_params_in_set_value(full):
    rows = full.execute(
        "SELECT y, rev AT (SET y = ?) AS v FROM eo GROUP BY y ORDER BY y",
        (2023,),
    ).rows
    assert all(r[1] == 14 for r in rows)


def test_qualify_over_pivot(full):
    rows = full.execute(
        """SELECT * FROM
             (SELECT prodName, custName, revenue FROM Orders)
             PIVOT(SUM(revenue) FOR custName IN ('Alice' AS alice, 'Bob' AS bob))
           QUALIFY ROW_NUMBER() OVER (ORDER BY COALESCE(alice, 0) DESC) = 1"""
    ).rows
    assert rows == [("Happy", 13, 4)]


def test_measure_of_pivoted_subquery(full):
    """Measures defined over a pivoted derived table."""
    rows = full.execute(
        """SELECT AGGREGATE(m) FROM
           (SELECT prodName, SUM(alice) AS MEASURE m FROM
              ((SELECT prodName, custName, revenue FROM Orders)
               PIVOT(SUM(revenue) FOR custName IN ('Alice' AS alice))))
        """
    ).rows
    assert rows == [(13,)]


def test_unpivot_then_measure(full):
    full.execute("CREATE TABLE w (k VARCHAR, a INTEGER, b INTEGER)")
    full.execute("INSERT INTO w VALUES ('x', 1, 2), ('y', 3, 4)")
    rows = full.execute(
        """SELECT col, AGGREGATE(total) FROM
           (SELECT col, SUM(v) AS MEASURE total FROM
              (w UNPIVOT(v FOR col IN (a, b))))
           GROUP BY col ORDER BY col"""
    ).rows
    assert rows == [("a", 4), ("b", 6)]


def test_within_distinct_plus_measure_plus_param(full):
    full.execute(
        """CREATE TABLE lines (orderId INTEGER, part VARCHAR, ship INTEGER)"""
    )
    full.execute(
        "INSERT INTO lines VALUES (1, 'a', 5), (1, 'b', 5), (2, 'a', 7)"
    )
    full.execute(
        """CREATE VIEW lm AS
           SELECT orderId, part,
                  SUM(ship) WITHIN DISTINCT (orderId) AS MEASURE shipping
           FROM lines"""
    )
    value = full.execute(
        "SELECT AGGREGATE(shipping) FROM lm WHERE orderId = ?",
        (1,),
    ).scalar()
    assert value == 5


def test_explain_expand_of_parameterized_query(full):
    expanded = full.execute(
        "EXPLAIN EXPAND SELECT prodName, rev AT (WHERE y = 2023) FROM eo GROUP BY prodName"
    ).scalar()
    assert "2023" in expanded


def test_update_uses_measure_snapshot(full):
    full.execute("CREATE TABLE plan2024 (prodName VARCHAR, target INTEGER)")
    full.execute(
        "INSERT INTO plan2024 SELECT prodName, AGGREGATE(rev) * 2 FROM eo GROUP BY prodName"
    )
    assert full.execute("SELECT SUM(target) FROM plan2024").scalar() == 50
