"""Parser robustness: arbitrary input must either parse or raise a typed
error — never an internal exception (IndexError, RecursionError, ...)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, SqlError
from repro.sql import parse_statement, to_sql

TOKENS = [
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "HAVING", "JOIN",
    "ON", "AS", "MEASURE", "AT", "ALL", "SET", "VISIBLE", "AGGREGATE",
    "CURRENT", "AND", "OR", "NOT", "NULL", "(", ")", ",", "*", "+", "-",
    "/", "=", "<", ">", "x", "y", "t", "u", "1", "2", "'s'", ";", ".",
    "CASE", "WHEN", "THEN", "END", "ROLLUP", "UNION", "LIMIT", "IN",
    "EXPLAIN", "ANALYZE", "LINT", "EXPAND", "DROP", "TABLE", "INSERT",
    "INTO", "VALUES",
]


@settings(max_examples=300, deadline=None)
@given(st.lists(st.sampled_from(TOKENS), min_size=1, max_size=25))
def test_parser_never_crashes(tokens):
    sql = " ".join(tokens)
    try:
        parse_statement(sql)
    except SqlError:
        pass  # typed rejection is fine
    except RecursionError:
        pass  # pathological nesting depth is acceptable to refuse
    # Any other exception type fails the test.


@settings(max_examples=300, deadline=None)
@given(st.text(max_size=40))
def test_parser_handles_arbitrary_text(text):
    try:
        parse_statement(text)
    except SqlError:
        pass
    except RecursionError:
        pass


@settings(max_examples=150, deadline=None)
@given(st.lists(st.sampled_from(TOKENS), min_size=1, max_size=20))
def test_execute_never_crashes(tokens):
    """End-to-end: parse+bind+execute raises only SqlError subclasses."""
    db = Database()
    db.execute("CREATE TABLE t (x INTEGER, y INTEGER)")
    db.execute("CREATE TABLE u (x INTEGER)")
    db.execute("INSERT INTO t VALUES (1, 2)")
    sql = " ".join(tokens)
    try:
        db.execute(sql)
    except SqlError:
        pass
    except RecursionError:
        pass


@settings(max_examples=100, deadline=None)
@given(st.lists(st.sampled_from(TOKENS), min_size=1, max_size=25))
def test_successful_parse_round_trips(tokens):
    """Whatever parses must print and re-parse to a fixed point."""
    sql = " ".join(tokens)
    try:
        statement = parse_statement(sql)
    except (SqlError, RecursionError):
        return
    printed = to_sql(statement)
    assert to_sql(parse_statement(printed)) == printed


# -- targeted EXPLAIN option forms -------------------------------------------

EXPLAIN_FORMS = [
    "EXPLAIN SELECT x FROM t",
    "EXPLAIN ANALYZE SELECT x FROM t",
    "EXPLAIN (LINT) SELECT x FROM t",
    "EXPLAIN (ANALYZE) SELECT x FROM t",
    "EXPLAIN (LINT, ANALYZE) SELECT x FROM t",
    "EXPLAIN (ANALYZE, LINT) SELECT x FROM t",
    "EXPLAIN EXPAND SELECT x FROM t",
    "EXPLAIN (TYPES) SELECT x FROM t",
    "EXPLAIN (LINT, TYPES) SELECT x FROM t",
    "EXPLAIN (TYPES, ANALYZE) SELECT x FROM t",
    "EXPLAIN (ANALYZE, LINT, TYPES) SELECT x FROM t",
    "EXPLAIN (SELECT x FROM t)",          # parenthesized query, not options
    "EXPLAIN ANALYZE (SELECT x FROM t)",
    "EXPLAIN ANALYZE DROP TABLE t",       # DDL target: parses, lints RP111
    "EXPLAIN INSERT INTO t VALUES (1)",
]


@settings(max_examples=50, deadline=None)
@given(st.sampled_from(EXPLAIN_FORMS))
def test_explain_forms_round_trip(sql):
    """Every EXPLAIN option form parses, prints canonically, and the
    printed form is a fixed point of parse-print."""
    printed = to_sql(parse_statement(sql))
    assert printed.startswith("EXPLAIN")
    assert to_sql(parse_statement(printed)) == printed


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.sampled_from(["LINT", "ANALYZE", "TYPES", ",", "(", ")"]),
        min_size=0,
        max_size=6,
    )
)
def test_explain_option_soup_never_crashes(tokens):
    """Arbitrary option-ish token soup after EXPLAIN is either parsed or
    rejected with a typed error."""
    sql = "EXPLAIN " + " ".join(tokens) + " SELECT x FROM t"
    try:
        statement = parse_statement(sql)
    except (SqlError, RecursionError):
        return
    printed = to_sql(statement)
    assert to_sql(parse_statement(printed)) == printed
