"""The query server end to end: protocol round-trips, concurrent clients,
prepared statements, cancellation, and plan-cache invalidation.

The headline test is the acceptance criterion from the server design:
four concurrent clients replaying every paper listing must produce
byte-identical canonical JSON to a single-threaded ``Database.execute``
run, with plan-cache hits and zero plan flips.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import Database
from repro.server import (
    ClientError,
    Connection,
    ServerThread,
    SessionManager,
    connect,
)
from repro.server.protocol import dumps_line, encode_result
from repro.workloads.listings import SETUP, all_listing_sql
from repro.workloads.paper_data import load_paper_tables


def _paper_database(telemetry: bool = True) -> Database:
    db = Database(telemetry=telemetry)
    load_paper_tables(db)
    for ddl in SETUP.values():
        db.execute(ddl)
    return db


@pytest.fixture
def server_db() -> Database:
    return _paper_database()


@pytest.fixture
def server(server_db):
    with ServerThread(server_db) as thread:
        yield thread


def _connect(server: ServerThread) -> Connection:
    return connect(server.server.host, server.server.port)


# -- protocol round-trips ------------------------------------------------------


class TestRoundTrip:
    def test_query_matches_direct_execute(self, server, server_db):
        direct = server_db.execute(
            "SELECT prodName, SUM(revenue) AS r FROM Orders "
            "GROUP BY prodName ORDER BY prodName"
        )
        with _connect(server) as conn:
            remote = conn.query(
                "SELECT prodName, SUM(revenue) AS r FROM Orders "
                "GROUP BY prodName ORDER BY prodName"
            )
        assert dumps_line(remote.payload) == dumps_line(encode_result(direct))
        assert remote.columns == ["prodName", "r"]

    def test_greeting_names_the_session(self, server):
        with _connect(server) as conn:
            assert conn.session_id.startswith("s")
            assert conn.server_version == 1

    def test_ddl_and_dml_round_trip(self, server):
        with _connect(server) as conn:
            conn.query("CREATE TABLE nums (n INTEGER)")
            inserted = conn.query("INSERT INTO nums VALUES (1), (2), (3)")
            assert inserted.rowcount == 3
            assert conn.query("SELECT SUM(n) FROM nums").scalar() == 6

    def test_errors_carry_the_server_exception_class(self, server):
        with _connect(server) as conn:
            with pytest.raises(ClientError) as excinfo:
                conn.query("SELECT * FROM no_such_table")
            assert excinfo.value.error_class
            assert "no_such_table" in excinfo.value.message
            # The session survives a failed statement.
            assert conn.query("SELECT COUNT(*) FROM Orders").scalar() >= 1

    def test_sessions_system_table_sees_the_connection(self, server):
        with _connect(server) as conn:
            rows = conn.query(
                "SELECT session_id FROM repro_sessions ORDER BY session_id"
            ).rows
            assert [conn.session_id] == [r[0] for r in rows]


# -- prepared statements -------------------------------------------------------


class TestPrepared:
    def test_prepare_execute_with_params(self, server):
        with _connect(server) as conn:
            handle = conn.prepare(
                "SELECT COUNT(*) FROM Orders WHERE prodName = ?"
            )
            happy = conn.execute(handle, ["Happy"]).scalar()
            acme = conn.execute(handle, ["Acme"]).scalar()
            direct_happy = conn.query(
                "SELECT COUNT(*) FROM Orders WHERE prodName = 'Happy'"
            ).scalar()
            direct_acme = conn.query(
                "SELECT COUNT(*) FROM Orders WHERE prodName = 'Acme'"
            ).scalar()
            assert happy == direct_happy
            assert acme == direct_acme

    def test_prepare_primes_the_plan_cache(self, server):
        manager = server.manager
        with _connect(server) as conn:
            before = manager.plan_cache.stats()["misses"]
            handle = conn.prepare("SELECT COUNT(*) FROM Orders")
            primed = manager.plan_cache.stats()
            conn.execute(handle)
            after = manager.plan_cache.stats()
        assert primed["size"] >= 1
        assert after["hits"] >= 1
        # Priming itself was the only miss; execute replayed the plan.
        assert after["misses"] == before + 1

    def test_unknown_handle_is_an_error(self, server):
        with _connect(server) as conn:
            with pytest.raises(ClientError):
                conn.execute("bogus_handle")


# -- cancellation --------------------------------------------------------------


class TestCancel:
    def test_cancel_aborts_a_long_query(self, server):
        with _connect(server) as conn:
            conn.query("CREATE TABLE big (x INTEGER)")
            values = ", ".join(f"({i})" for i in range(400))
            conn.query(f"INSERT INTO big VALUES {values}")

            failure = {}

            def run_doomed():
                try:
                    conn.query(
                        "SELECT COUNT(*) FROM big AS a "
                        "JOIN big AS b ON a.x >= 0 "
                        "JOIN big AS c ON b.x >= 0"
                    )
                except ClientError as exc:
                    failure["error"] = exc

            runner = threading.Thread(target=run_doomed)
            runner.start()
            import time

            time.sleep(0.3)
            conn.cancel()
            runner.join(timeout=30)
            assert not runner.is_alive(), "cancel did not abort the query"
            assert failure["error"].error_class == "QueryCancelled"
            # The session is immediately usable again.
            assert conn.query("SELECT COUNT(*) FROM big").scalar() == 400


# -- the acceptance criterion --------------------------------------------------


class TestConcurrentListings:
    CLIENTS = 4

    def test_four_clients_byte_identical_with_cache_hits_no_flips(self):
        """Four connections replay every paper listing concurrently; each
        client's canonical JSON must equal the single-caller baseline,
        with plan-cache hits and zero plan flips."""
        reference = _paper_database(telemetry=False)
        listings = all_listing_sql(reference)
        baseline = {
            name: dumps_line(encode_result(reference.execute(sql)))
            for name, sql in listings.items()
        }

        server_db = _paper_database()
        with ServerThread(server_db) as server:
            results = [dict() for _ in range(self.CLIENTS)]
            errors = []

            def client(i):
                try:
                    with _connect(server) as conn:
                        for name, sql in listings.items():
                            payload = conn.query(sql).payload
                            results[i][name] = dumps_line(payload)
                except Exception as exc:  # surface in the main thread
                    errors.append(exc)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(self.CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            for i in range(self.CLIENTS):
                assert results[i] == baseline, f"client {i} diverged"

            stats = server.manager.plan_cache.stats()
            assert stats["hits"] > 0
            assert server_db.plan_flips() == []
        # Clean shutdown: every session closed.
        assert server.manager.sessions() == []

    def test_abrupt_disconnect_closes_the_session(self, server):
        conn = _connect(server)
        conn.query("SELECT COUNT(*) FROM Orders")
        assert len(server.manager.sessions()) == 1
        # Drop the socket without a close op.
        conn._sock.close()
        conn._file.close()
        deadline = 50
        import time

        while server.manager.sessions() and deadline:
            time.sleep(0.1)
            deadline -= 1
        assert server.manager.sessions() == []


# -- plan-cache lifecycle (via sessions, no sockets) ---------------------------


class TestPlanCacheInvalidation:
    def _manager(self, capacity: int = 128):
        db = Database(telemetry=True)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        return db, SessionManager(db, plan_cache_capacity=capacity)

    def test_hit_after_cold_plan(self):
        db, manager = self._manager()
        session = manager.open_session()
        session.execute("SELECT SUM(x) FROM t")
        session.execute("SELECT SUM(x) FROM t")
        stats = manager.plan_cache.stats()
        assert stats == {"capacity": 128, "size": 1, "hits": 1, "misses": 1}
        assert db.telemetry.plan_cache_hits_total.value() == 1

    def test_dml_evicts_plans_over_the_table(self):
        db, manager = self._manager()
        session = manager.open_session()
        session.execute("SELECT SUM(x) FROM t")
        assert manager.plan_cache.stats()["size"] == 1
        session.execute("INSERT INTO t VALUES (4)")
        assert manager.plan_cache.stats()["size"] == 0
        # And the replay sees the new row (no stale plan, no stale rows).
        assert session.execute("SELECT SUM(x) FROM t").scalar() == 10
        assert (
            db.telemetry.plan_cache_evictions_total.value(reason="dml") == 1
        )

    def test_dml_keeps_unrelated_plans(self):
        db, manager = self._manager()
        db.execute("CREATE TABLE u (y INTEGER)")
        db.execute("INSERT INTO u VALUES (7)")
        session = manager.open_session()
        session.execute("SELECT SUM(x) FROM t")
        session.execute("SELECT SUM(y) FROM u")
        session.execute("INSERT INTO t VALUES (4)")
        remaining = [row[1] for row in manager.plan_cache.rows()]
        assert remaining == ["SELECT SUM(u.y) FROM u"] or len(remaining) == 1

    def test_ddl_clears_the_whole_cache(self):
        db, manager = self._manager()
        session = manager.open_session()
        session.execute("SELECT SUM(x) FROM t")
        session.execute("CREATE TABLE other (z INTEGER)")
        assert manager.plan_cache.stats()["size"] == 0
        assert (
            db.telemetry.plan_cache_evictions_total.value(reason="ddl") == 1
        )

    def test_refresh_evicts_the_matview_chain(self):
        db, manager = self._manager()
        db.execute(
            "CREATE MATERIALIZED VIEW sums AS "
            "SELECT x, COUNT(*) AS c FROM t GROUP BY x"
        )
        session = manager.open_session()
        session.execute("SELECT SUM(c) FROM sums")
        assert manager.plan_cache.stats()["size"] == 1
        session.execute("REFRESH MATERIALIZED VIEW sums")
        assert manager.plan_cache.stats()["size"] == 0
        assert (
            db.telemetry.plan_cache_evictions_total.value(reason="refresh")
            == 1
        )

    def test_plan_flip_evicts_the_fingerprint(self):
        db, manager = self._manager()
        session = manager.open_session()
        session.execute("SELECT SUM(x) FROM t")
        (row,) = manager.plan_cache.rows()
        fingerprint = row[0]
        # Simulate a plan flip for that fingerprint (as EXPLAIN/summary
        # strategy changes would record it).
        db.telemetry.statements.observe(
            fingerprint, "q", 1.0, strategy="interpreter", plan_hash="zzz"
        )
        # The next cache interaction applies the pending eviction, so the
        # statement replans instead of replaying the flipped plan.
        session.execute("SELECT SUM(x) FROM t")
        stats = manager.plan_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 2
        assert (
            db.telemetry.plan_cache_evictions_total.value(reason="flip") >= 1
        )

    def test_lru_eviction_at_capacity(self):
        db, manager = self._manager(capacity=2)
        session = manager.open_session()
        session.execute("SELECT SUM(x) FROM t")
        session.execute("SELECT COUNT(*) FROM t")
        session.execute("SELECT MIN(x) FROM t")  # evicts the SUM plan
        stats = manager.plan_cache.stats()
        assert stats["size"] == 2
        assert (
            db.telemetry.plan_cache_evictions_total.value(reason="lru") == 1
        )
        session.execute("SELECT SUM(x) FROM t")  # cold again
        assert manager.plan_cache.stats()["misses"] == 4

    def test_closed_session_rejects_statements(self):
        db, manager = self._manager()
        session = manager.open_session()
        session.close()
        from repro.errors import SqlError

        with pytest.raises(SqlError):
            session.execute("SELECT 1 FROM t")

    def test_plan_cache_system_table_orders_lru_first(self):
        db, manager = self._manager()
        session = manager.open_session()
        session.execute("SELECT SUM(x) FROM t")
        session.execute("SELECT COUNT(*) FROM t")
        session.execute("SELECT SUM(x) FROM t")  # now most recently used
        queries = [row[1] for row in manager.plan_cache.rows()]
        assert queries[-1] == "SELECT SUM(x) FROM t"
