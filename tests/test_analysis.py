"""Static analysis: lint rules (RPxxx codes + spans), bind-error source
positions, the plan/IR validator, and optimizer non-convergence detection."""

from __future__ import annotations

import copy
import io

import pytest

from repro import Database
from repro.analysis import (
    RULES,
    Severity,
    check_plan,
    plan_fingerprint,
    validate_plan,
    validation_enabled,
)
from repro.errors import BindError, InternalError, ValidationError
from repro.plan import logical as plans
from repro.semantics import bound as b
from repro.semantics.binder import Binder
from repro.sql import parse_query
from repro.types import infer_literal_type
from repro.workloads.listings import LISTINGS, SETUP, expanded_listings
from repro.workloads.paper_data import load_paper_tables

INT = infer_literal_type(1)


def codes(db: Database, sql: str) -> list[str]:
    return [diag.code for diag in db.lint(sql)]


def plan_of(db: Database, sql: str) -> plans.LogicalPlan:
    plan, _ = Binder(db.catalog).bind_query_top(parse_query(sql))
    return plan


@pytest.fixture
def summary_db() -> Database:
    """Orders plus a (prodName, custName) summary — RP110 / reject tests."""
    db = Database()
    load_paper_tables(db)
    db.execute(
        """CREATE MATERIALIZED VIEW prod_cust AS
           SELECT prodName, custName, SUM(revenue) AS rev, COUNT(*) AS n
           FROM Orders GROUP BY prodName, custName"""
    )
    return db


# ---------------------------------------------------------------------------
# Lint rules: one negative fixture per code, spans required
# ---------------------------------------------------------------------------

#: (fixture name, sql, expected code) — every rule the engine can emit.
NEGATIVE_FIXTURES = [
    ("paper_db", "SELEC 1", "RP001"),
    ("paper_db", "SELECT nosuch FROM Orders", "RP002"),
    ("orders_db", "SELECT orderDate, profitMargin FROM EnhancedOrders", "RP101"),
    ("orders_db", "SELECT orderDate AT (ALL prodName) FROM EnhancedOrders", "RP102"),
    (
        "orders_db",
        "SELECT AGGREGATE(profitMargin AT (ALL nosuchdim)) "
        "FROM EnhancedOrders GROUP BY orderDate",
        "RP103",
    ),
    ("paper_db", "SELECT revenue AS r, cost AS r FROM Orders", "RP104"),
    ("paper_db", "WITH dead AS (SELECT 1 AS one) SELECT 2 AS two", "RP105"),
    ("paper_db", "SELECT prodName FROM Orders WHERE SUM(revenue) > 10", "RP106"),
    (
        "paper_db",
        "SELECT custName FROM Orders "
        "JOIN Customers ON Orders.custName = Customers.custName",
        "RP107",
    ),
    ("paper_db", "SELECT prodName FROM Orders LIMIT 2", "RP108"),
    ("paper_db", "CREATE VIEW v AS SELECT * FROM Orders", "RP109"),
    (
        "summary_db",
        "SELECT orderDate, SUM(revenue) AS r FROM Orders GROUP BY orderDate",
        "RP110",
    ),
    ("paper_db", "CREATE VIEW v AS SHOW STATS", "RP112"),
    (
        "paper_db",
        "CREATE MATERIALIZED VIEW mv_stats AS "
        "SELECT fingerprint, SUM(calls) AS c "
        "FROM repro_stat_statements GROUP BY fingerprint",
        "RP113",
    ),
    ("paper_db", "SELECT prodName FROM Orders WHERE prodName = 5", "RP114"),
    ("paper_db", "SELECT prodName FROM Orders WHERE revenue = NULL", "RP115"),
    ("paper_db", "SELECT CAST('nope' AS DATE) FROM Orders", "RP116"),
    (
        "orders_db",
        "SELECT orderDate, AGGREGATE(profitMargin AT (SET orderDate = 5)) "
        "FROM EnhancedOrders GROUP BY orderDate",
        "RP117",
    ),
    (
        "paper_db",
        "SELECT c.custAge, SUM(o.revenue) FROM Orders AS o "
        "LEFT JOIN Customers AS c ON o.custName = c.custName "
        "GROUP BY c.custAge",
        "RP118",
    ),
]


@pytest.mark.parametrize(
    "fixture,sql,code", NEGATIVE_FIXTURES, ids=[c for _, _, c in NEGATIVE_FIXTURES]
)
def test_negative_fixture_reports_code_with_span(fixture, sql, code, request):
    db = request.getfixturevalue(fixture)
    diags = db.lint(sql)
    hits = [d for d in diags if d.code == code]
    assert hits, f"expected {code}, got {[d.code for d in diags]}"
    diag = hits[0]
    assert diag.line > 0 and diag.column > 0, f"{code} lost its span: {diag}"
    assert diag.severity == RULES[code][0]


def test_fixture_table_covers_ten_distinct_codes():
    assert len({code for _, _, code in NEGATIVE_FIXTURES}) >= 10


def test_rp002_span_points_at_the_bad_column(paper_db):
    (diag,) = paper_db.lint("SELECT nosuch FROM Orders")
    assert diag.code == "RP002"
    assert (diag.line, diag.column) == (1, 8)


def test_rp103_flags_measure_used_as_dimension(orders_db):
    diags = orders_db.lint(
        "SELECT AGGREGATE(profitMargin AT (ALL profitMargin)) "
        "FROM EnhancedOrders GROUP BY orderDate"
    )
    hits = [d for d in diags if d.code == "RP103"]
    assert hits and "measure" in hits[0].message


def test_rp104_duplicate_table_alias_and_cte_shadow(paper_db):
    assert "RP104" in codes(paper_db, "SELECT 1 AS one FROM Orders o, Customers o")
    assert "RP104" in codes(
        paper_db, "WITH Orders AS (SELECT 1 AS x) SELECT x FROM Orders"
    )


def test_rp107_exempts_using_merged_columns(paper_db):
    sql = "SELECT custName FROM Orders JOIN Customers USING (custName)"
    assert "RP107" not in codes(paper_db, sql)


def test_rp108_silent_with_order_by(paper_db):
    sql = "SELECT prodName FROM Orders ORDER BY prodName LIMIT 2"
    assert paper_db.lint(sql) == []


def test_rp109_only_fires_in_view_definitions(paper_db):
    assert "RP109" not in codes(paper_db, "SELECT * FROM Orders")


def test_rp110_names_the_matchability_rule(summary_db):
    diags = summary_db.lint(
        "SELECT orderDate, SUM(revenue) AS r FROM Orders GROUP BY orderDate"
    )
    hits = [d for d in diags if d.code == "RP110"]
    assert hits
    assert hits[0].severity == Severity.INFO
    assert "missing-dimension" in hits[0].message


def test_lint_handles_scripts_and_orders_by_severity(paper_db):
    diags = paper_db.lint(
        "SELECT prodName FROM Orders LIMIT 1; SELECT nosuch FROM Orders"
    )
    found = [d.code for d in diags]
    assert "RP108" in found and "RP002" in found
    # Severity-major ordering: the error sorts before the warning.
    assert found.index("RP002") < found.index("RP108")


def test_lint_never_raises_on_garbage(paper_db):
    for sql in ("", ";;;", "SELECT", "WITH", ")))", "AT AT AT"):
        diags = paper_db.lint(sql)
        assert all(d.code in RULES for d in diags)


def test_paper_listings_lint_clean(paper_db):
    for name, ddl in SETUP.items():
        assert paper_db.lint(ddl) == [], f"setup {name} has findings"
        paper_db.execute(ddl)
    listings = dict(LISTINGS)
    listings.update(expanded_listings(paper_db))
    for name, sql in listings.items():
        diags = paper_db.lint(sql)
        assert diags == [], f"{name}: {[d.render() for d in diags]}"


# ---------------------------------------------------------------------------
# Surfaces: EXPLAIN (LINT) and the shell's \lint
# ---------------------------------------------------------------------------


def test_explain_lint_prepends_diagnostics(paper_db):
    rows = paper_db.execute(
        "EXPLAIN (LINT) SELECT prodName FROM Orders LIMIT 2"
    ).rows
    lines = [row[0] for row in rows]
    assert any(line.startswith("lint: warning RP108") for line in lines)
    # The plan itself still follows the lint block.
    assert any("Scan" in line for line in lines)


def test_explain_lint_clean_query(paper_db):
    rows = paper_db.execute(
        "EXPLAIN (LINT) SELECT prodName FROM Orders ORDER BY prodName"
    ).rows
    assert ("lint: clean",) in rows


def test_shell_lint_meta_command(paper_db):
    from repro.cli import Shell

    out = io.StringIO()
    shell = Shell(db=paper_db, out=out)
    shell.handle_line("\\lint SELECT prodName FROM Orders LIMIT 2;")
    assert "RP108" in out.getvalue()

    out = io.StringIO()
    Shell(db=paper_db, out=out).handle_line(
        "\\lint SELECT prodName FROM Orders;"
    )
    assert "lint: clean" in out.getvalue()


# ---------------------------------------------------------------------------
# Bind errors carry source positions (no more "line 0")
# ---------------------------------------------------------------------------


def test_bind_error_span_single_line(paper_db):
    with pytest.raises(BindError) as err:
        paper_db.execute("SELECT nosuch FROM Orders")
    assert err.value.line == 1 and err.value.column == 8
    assert "line 1, column 8" in str(err.value)


def test_bind_error_span_multi_line(paper_db):
    with pytest.raises(BindError) as err:
        paper_db.execute("SELECT\n  nosuch\nFROM Orders")
    assert err.value.line == 2


def test_bind_error_span_order_by_after_group_by(paper_db):
    sql = (
        "SELECT prodName, SUM(revenue) AS r FROM Orders "
        "GROUP BY prodName ORDER BY zzz"
    )
    with pytest.raises(BindError) as err:
        paper_db.execute(sql)
    assert "zzz" in str(err.value)
    assert err.value.line == 1 and err.value.column == sql.index("zzz") + 1


def test_bind_error_span_aggregate_in_where(paper_db):
    with pytest.raises(BindError) as err:
        paper_db.execute("SELECT prodName FROM Orders WHERE SUM(revenue) > 1")
    assert err.value.line == 1 and err.value.column > 1


# ---------------------------------------------------------------------------
# Plan/IR validator
# ---------------------------------------------------------------------------


def _values(arity: int = 1) -> plans.ValuesPlan:
    row = [b.BoundLiteral(i, INT) for i in range(arity)]
    schema = [(f"c{i}", INT) for i in range(arity)]
    return plans.ValuesPlan([row], schema)


def test_validator_accepts_real_plans(paper_db):
    for sql in (
        "SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName",
        "SELECT o.prodName FROM Orders o JOIN Customers c "
        "ON o.custName = c.custName WHERE o.revenue > 4",
        "SELECT prodName FROM Orders WHERE revenue > "
        "(SELECT MIN(revenue) FROM Orders)",
    ):
        assert validate_plan(plan_of(paper_db, sql)) == []


def test_validator_flags_out_of_range_offset():
    bad = plans.Project(_values(1), [b.BoundColumn(3, INT, "y")], [("y", INT)])
    violations = validate_plan(bad)
    assert violations and "out of range" in violations[0]


def test_validator_flags_project_arity_mismatch():
    col = b.BoundColumn(0, INT, "x")
    bad = plans.Project(_values(1), [col, col], [("y", INT)])
    assert any("arity" in v for v in validate_plan(bad))


def test_validator_flags_dangling_outer_reference():
    bad = plans.Filter(_values(1), b.BoundOuterColumn(1, 0, INT, "o"))
    assert any("nesting depth" in v for v in validate_plan(bad))


def test_validator_checks_inside_subquery_plans():
    inner = plans.Project(_values(1), [b.BoundColumn(9, INT)], [("y", INT)])
    sub = b.BoundSubquery(inner, "SCALAR", INT)
    bad = plans.Filter(_values(1), sub)
    violations = validate_plan(bad)
    assert violations and "subquery" in violations[0]


def test_check_plan_raises_with_violation_detail():
    bad = plans.Project(_values(1), [b.BoundColumn(3, INT)], [("y", INT)])
    with pytest.raises(ValidationError) as err:
        check_plan(bad, "unit-test")
    assert "unit-test" in str(err.value)
    assert err.value.violations


def test_validation_enabled_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    assert not validation_enabled()
    monkeypatch.setenv("REPRO_VALIDATE", "1")
    assert validation_enabled()
    monkeypatch.setenv("REPRO_VALIDATE", "0")
    assert not validation_enabled()


def test_validating_database_matches_plain_results(validating_db):
    load_paper_tables(validating_db)
    plain = Database()
    load_paper_tables(plain)
    for sql in (
        "SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName "
        "ORDER BY prodName",
        "SELECT o.prodName, c.custAge FROM Orders o JOIN Customers c "
        "ON o.custName = c.custName WHERE o.revenue > 4 ORDER BY 1, 2",
    ):
        assert validating_db.execute(sql).rows == plain.execute(sql).rows


# ---------------------------------------------------------------------------
# Fingerprints and non-convergence detection
# ---------------------------------------------------------------------------


def test_fingerprint_is_structural_not_identity(paper_db):
    sql = (
        "SELECT prodName FROM Orders WHERE revenue > "
        "(SELECT MIN(revenue) FROM Orders)"
    )
    plan = plan_of(paper_db, sql)
    assert plan_fingerprint(plan) == plan_fingerprint(copy.deepcopy(plan))


def test_fingerprint_distinguishes_different_plans(paper_db):
    one = plan_of(paper_db, "SELECT prodName FROM Orders WHERE revenue > 4")
    two = plan_of(paper_db, "SELECT prodName FROM Orders WHERE revenue > 5")
    assert plan_fingerprint(one) != plan_fingerprint(two)


def test_validator_catches_non_converging_rewrite_rule(paper_db, monkeypatch):
    """A rule that 'changes' the plan into a structural copy of itself used
    to spin to the MAX_PASSES cap and die as an opaque InternalError; with
    validation on, the very first wasted pass is reported as such."""
    from repro.plan import optimizer

    plan = plan_of(paper_db, "SELECT prodName FROM Orders WHERE revenue > 4")
    monkeypatch.setattr(
        optimizer, "_rewrite", lambda p: (copy.deepcopy(p), True)
    )
    with pytest.raises(ValidationError, match="structurally identical"):
        optimizer.optimize(plan, validate=True)
    with pytest.raises(InternalError, match="fixpoint") as err:
        optimizer.optimize(plan, validate=False)
    assert not isinstance(err.value, ValidationError)


# ---------------------------------------------------------------------------
# Summary reject reasons carry rule slugs
# ---------------------------------------------------------------------------


def test_reject_reasons_break_down_by_rule(summary_db):
    summary_db.execute(
        "SELECT orderDate, SUM(revenue) AS r FROM Orders GROUP BY orderDate"
    )
    stats = summary_db.summary_stats()["prod_cust"]
    assert stats["rejects"] == 1
    assert stats["reject_reasons"] == {"missing-dimension": 1}


def test_explain_reject_lines_name_the_rule(summary_db):
    rows = summary_db.execute(
        "EXPLAIN SELECT orderDate, SUM(revenue) AS r FROM Orders "
        "GROUP BY orderDate"
    ).rows
    lines = [row[0] for row in rows]
    assert any(
        "rejected [missing-dimension]" in line for line in lines
    ), lines


def test_lint_summary_advisor_does_not_inflate_counters(summary_db):
    summary_db.lint(
        "SELECT orderDate, SUM(revenue) AS r FROM Orders GROUP BY orderDate"
    )
    assert summary_db.summary_stats()["prod_cust"]["rejects"] == 0


# ---------------------------------------------------------------------------
# Self-check entry point
# ---------------------------------------------------------------------------


def test_self_check_passes_on_paper_listings(tmp_path, capsys):
    from repro.analysis.__main__ import main

    exit_code = main(["--self-check", "--examples-dir", str(tmp_path / "no")])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "0 with findings" in out
