"""Unit tests for the bound IR, fingerprints, and correlation utilities."""

from __future__ import annotations

import pytest

from repro.plan import logical as plans
from repro.semantics import bound as b
from repro.semantics.correlate import (
    collect_outer_refs,
    normalize_outer,
    plan_expressions,
    remap_outer_expr,
    transform_expr,
)
from repro.types import BOOLEAN, DOUBLE, INTEGER, VARCHAR


def col(offset, dtype=INTEGER, name=""):
    return b.BoundColumn(offset, dtype, name)


def lit(value, dtype=INTEGER):
    return b.BoundLiteral(value, dtype)


def call(op, *args, dtype=INTEGER):
    return b.BoundCall(op, list(args), dtype, lambda *a: None)


# -- fingerprints ------------------------------------------------------------


def test_fingerprint_column_identity():
    assert b.fingerprint(col(3)) == b.fingerprint(col(3, VARCHAR, "other"))
    assert b.fingerprint(col(3)) != b.fingerprint(col(4))


def test_fingerprint_call_structure():
    left = call("+", col(0), lit(1))
    right = call("+", col(0), lit(1))
    assert b.fingerprint(left) == b.fingerprint(right)
    assert b.fingerprint(call("+", col(0), lit(2))) != b.fingerprint(left)


def test_fingerprint_distinguishes_agg_flavors():
    plain = b.BoundAggCall("SUM", [col(0)], False, False, None, INTEGER)
    distinct = b.BoundAggCall("SUM", [col(0)], True, False, None, INTEGER)
    assert b.fingerprint(plain) != b.fingerprint(distinct)


def test_fingerprint_literal_types():
    assert b.fingerprint(lit("x", VARCHAR)) == "'x'"
    assert b.fingerprint(lit(None, INTEGER)) == "NULL"


def test_walk_visits_all_nodes():
    expr = call("AND", call("=", col(0), lit(1), dtype=BOOLEAN), col(2), dtype=BOOLEAN)
    kinds = [type(node).__name__ for node in b.walk(expr)]
    assert kinds.count("BoundColumn") == 2
    assert kinds.count("BoundLiteral") == 1


def test_contains_aggregate():
    agg = b.BoundAggCall("SUM", [col(0)], False, False, None, INTEGER)
    assert b.contains_aggregate(call("+", agg, lit(1)))
    assert not b.contains_aggregate(call("+", col(0), lit(1)))


def test_max_outer_depth():
    outer = b.BoundOuterColumn(2, 1, INTEGER)
    assert b.max_outer_depth(call("+", col(0), outer)) == 2
    assert b.max_outer_depth(col(0)) == 0


# -- transform_expr -------------------------------------------------------------


def test_transform_replaces_subtree_and_stops():
    expr = call("+", call("*", col(0), lit(2)), col(1))

    def visit(node):
        if isinstance(node, b.BoundCall) and node.op == "*":
            return lit(99)
        return None

    result = transform_expr(expr, visit)
    assert b.fingerprint(result) == b.fingerprint(call("+", lit(99), col(1)))
    # The original expression is untouched.
    assert b.fingerprint(expr) != b.fingerprint(result)


def test_transform_identity_returns_same_object():
    expr = call("+", col(0), lit(1))
    assert transform_expr(expr, lambda n: None) is expr


# -- correlation -----------------------------------------------------------------


def make_plan(exprs):
    scan = plans.Scan("t", [("a", INTEGER), ("b", INTEGER)])
    return plans.Project(scan, exprs, [("x", INTEGER)] * len(exprs))


def test_collect_outer_refs_dedupes():
    plan = make_plan(
        [
            call("+", b.BoundOuterColumn(1, 0, INTEGER), b.BoundOuterColumn(1, 0, INTEGER)),
            b.BoundOuterColumn(2, 3, INTEGER),
        ]
    )
    assert collect_outer_refs(plan) == [(1, 0), (2, 3)]


def test_collect_outer_refs_shifts_nested_subqueries():
    inner = make_plan([b.BoundOuterColumn(2, 5, INTEGER)])
    subquery = b.BoundSubquery(inner, "SCALAR", INTEGER, outer_refs=[(2, 5)])
    plan = make_plan([subquery])
    # Depth 2 inside the subquery is depth 1 outside it.
    assert collect_outer_refs(plan) == [(1, 5)]


def test_normalize_outer_converts_refs():
    expr = call("YEAR", b.BoundOuterColumn(1, 2, INTEGER))
    normalized = normalize_outer(expr, 1)
    assert b.fingerprint(normalized) == b.fingerprint(call("YEAR", col(2)))


def test_normalize_outer_blocked_by_other_depths():
    expr = call("+", b.BoundOuterColumn(1, 0, INTEGER), b.BoundOuterColumn(2, 0, INTEGER))
    assert normalize_outer(expr, 1) is None


def test_remap_outer_expr_column_level():
    expr = b.BoundOuterColumn(1, 4, INTEGER, "k")
    remapped = remap_outer_expr(expr, {4: 0}, {})
    assert isinstance(remapped, b.BoundOuterColumn)
    assert remapped.offset == 0


def test_remap_outer_expr_expression_level():
    group_expr = call("YEAR", col(2))
    mapping = {}
    expr_mapping = {b.fingerprint(group_expr): (1, INTEGER)}
    expr = call("YEAR", b.BoundOuterColumn(1, 2, INTEGER))
    remapped = remap_outer_expr(expr, mapping, expr_mapping)
    assert isinstance(remapped, b.BoundOuterColumn)
    assert remapped.offset == 1


def test_remap_outer_expr_rejects_nongroup_ref():
    from repro.errors import BindError

    with pytest.raises(BindError):
        remap_outer_expr(b.BoundOuterColumn(1, 9, INTEGER, "q"), {}, {})


def test_plan_expressions_covers_all_operators():
    scan = plans.Scan("t", [("a", INTEGER)])
    filtered = plans.Filter(scan, call("=", col(0), lit(1), dtype=BOOLEAN))
    agg = plans.Aggregate(
        filtered,
        [col(0)],
        [b.BoundAggCall("COUNT", [], False, True, None, INTEGER)],
        [[0]],
        [("k", INTEGER), ("c", INTEGER)],
    )
    sorted_plan = plans.Sort(agg, [b.SortSpec(col(0))])
    limited = plans.Limit(sorted_plan, lit(10), None)
    exprs = list(plan_expressions(limited))
    assert len(exprs) == 5  # limit, sort key, group key, agg call, filter pred


def test_plan_tree_string():
    scan = plans.Scan("t", [("a", INTEGER)])
    filtered = plans.Filter(scan, call("=", col(0), lit(1), dtype=BOOLEAN))
    text = plans.plan_tree_string(filtered)
    assert text.splitlines() == ["Filter", "  Scan(t)"]


def test_aggregate_layout_offsets():
    scan = plans.Scan("t", [("a", INTEGER)])
    agg = plans.Aggregate(
        scan,
        [col(0)],
        [b.BoundAggCall("COUNT", [], False, True, None, INTEGER)],
        [[0], []],
        [("k", INTEGER), ("c", INTEGER), ("$gid", INTEGER), ("$rows", INTEGER)],
        capture_rows=True,
    )
    assert agg.has_grouping_id
    assert agg.grouping_id_offset == 2
    assert agg.captured_rows_offset == 3
