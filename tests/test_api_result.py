"""Public API and Result tests."""

from __future__ import annotations

import pytest

from repro import Database, Result, SqlError
from repro.result import ResultColumn
from repro.types import INTEGER, VARCHAR


def test_execute_script(db):
    results = db.execute_script(
        """
        CREATE TABLE t (a INTEGER);
        INSERT INTO t VALUES (1), (2);
        SELECT SUM(a) FROM t;
        """
    )
    assert len(results) == 3
    assert results[2].scalar() == 3


def test_query_alias(db):
    assert db.query("SELECT 42").scalar() == 42


def test_result_iteration_and_len(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    result = db.execute("SELECT a FROM t ORDER BY a")
    assert len(result) == 2
    assert list(result) == [(1,), (2,)]


def test_result_column_accessor(db):
    db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
    db.execute("INSERT INTO t VALUES (1, 'x')")
    result = db.execute("SELECT a, b FROM t")
    assert result.column("A") == [1]
    assert result.column("B") == ["x"]
    with pytest.raises(KeyError):
        result.column("zzz")


def test_result_to_dicts(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (7)")
    assert db.execute("SELECT a FROM t").to_dicts() == [{"a": 7}]


def test_scalar_requires_1x1(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    with pytest.raises(ValueError):
        db.execute("SELECT a FROM t").scalar()


def test_pretty_formats_table(db):
    db.execute("CREATE TABLE t (name VARCHAR, v DOUBLE)")
    db.execute("INSERT INTO t VALUES ('x', 0.5), ('longer', NULL)")
    text = db.execute("SELECT name, v FROM t").pretty()
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"=", " "}
    assert "longer" in text


def test_pretty_max_rows(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    for i in range(5):
        db.execute(f"INSERT INTO t VALUES ({i})")
    text = db.execute("SELECT a FROM t").pretty(max_rows=2)
    assert "3 more rows" in text


def test_pretty_ddl_message(db):
    result = db.execute("CREATE TABLE t (a INTEGER)")
    assert "created" in result.pretty()


def test_result_dataclass_direct():
    result = Result(
        columns=[ResultColumn("a", INTEGER), ResultColumn("s", VARCHAR)],
        rows=[(1, "x")],
        rowcount=1,
    )
    assert result.column_names == ["a", "s"]


def test_last_stats_populated(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    db.execute("SELECT a FROM t")
    assert db.last_stats is not None
    assert db.last_stats.rows_scanned == 1


def test_expand_requires_query(db):
    with pytest.raises(SqlError):
        db.expand("CREATE TABLE t (a INTEGER)")


def test_create_table_from_rows_roundtrip(db):
    count = db.create_table_from_rows(
        "people",
        [("name", "VARCHAR"), ("age", "INTEGER")],
        [("ann", 30), ("bo", None)],
    )
    assert count == 2
    assert db.execute("SELECT COUNT(*) FROM people").scalar() == 2


def test_doc_quickstart_example():
    from repro import Database

    db = Database()
    db.execute("CREATE TABLE Orders (prodName VARCHAR, revenue INTEGER)")
    db.execute("INSERT INTO Orders VALUES ('Happy', 6), ('Acme', 5)")
    db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, SUM(revenue) AS MEASURE sumRevenue FROM Orders"""
    )
    rows = db.execute(
        "SELECT prodName, AGGREGATE(sumRevenue) FROM eo GROUP BY prodName ORDER BY 1"
    ).rows
    assert rows == [("Acme", 5), ("Happy", 6)]


def test_describe_table(db):
    db.execute("CREATE TABLE t (a INTEGER, b DATE)")
    db.execute("INSERT INTO t VALUES (1, DATE '2024-01-01')")
    info = db.describe("t")
    assert info["kind"] == "table"
    assert info["rows"] == 1
    assert info["columns"][1] == {"name": "b", "type": "DATE", "measure": False}
    assert info["measures"] == []


def test_describe_measure_view_exposes_dimensionality(db):
    from repro.workloads.paper_data import load_paper_tables

    load_paper_tables(db)
    db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, YEAR(orderDate) AS y,
                  SUM(revenue) AS MEASURE r FROM Orders"""
    )
    info = db.describe("eo")
    assert info["kind"] == "view"
    assert info["measures"] == [
        {"name": "r", "type": "INTEGER", "dimensions": ["prodName", "y"]}
    ]
    # The formula is not exposed: the view is an abstraction boundary.
    assert "formula" not in str(info)
    assert "revenue" not in str(info)


def test_describe_unknown_raises(db):
    from repro import CatalogError

    with pytest.raises(CatalogError):
        db.describe("ghost")


def test_positional_parameters(db):
    db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
    db.execute("INSERT INTO t VALUES (?, ?)", (1, "x"))
    db.execute("INSERT INTO t VALUES (?, ?)", (2, "y"))
    rows = db.execute("SELECT b FROM t WHERE a >= ? ORDER BY b", (1,)).rows
    assert rows == [("x",), ("y",)]


def test_parameters_in_expressions_and_limits(db):
    assert db.execute("SELECT ? * ? + ?", (2, 3, 4)).scalar() == 10


def test_missing_parameter_raises(db):
    from repro import ExecutionError

    with pytest.raises(ExecutionError, match="parameter"):
        db.execute("SELECT ? + 1", ())


def test_parameter_null(db):
    assert db.execute("SELECT ? IS NULL", (None,)).scalar() is True


def test_parameters_with_measures(db):
    from repro.workloads.paper_data import load_paper_tables

    load_paper_tables(db)
    db.execute("CREATE VIEW eo AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders")
    rows = db.execute(
        "SELECT prodName FROM eo GROUP BY prodName HAVING AGGREGATE(r) > ? ORDER BY 1",
        (4,),
    ).rows
    assert rows == [("Acme",), ("Happy",)]
