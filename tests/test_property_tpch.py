"""Property tests for the TPC-H measure layer (hypothesis).

Two invariants the workload's summary machinery must never break:

* **drill-down additivity** — summing a SUM-measure across any region
  drill-down equals evaluating it at the grand total.  Tested with
  binary-exact inputs (integer prices, discounts in sixteenths), so the
  equality is exact ``==``, not approximate: any difference is a real
  aggregation bug, not float noise;
* **refresh coherence** — after an arbitrary interleaving of INSERTs and
  REFRESHes, a database answering from summary tables returns exactly what
  a summary-less twin computes cold.

The tables here are lineitem-shaped but tiny and adversarial (hypothesis
picks the values); the full-size generated workload is covered by
tests/test_differential_tpch.py.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

# price * (1 - k/16) = price * (16 - k) / 16: exact in binary for any
# integer price in range, so SUMs commute with regrouping exactly.
sale_strategy = st.tuples(
    st.sampled_from(REGIONS),
    st.integers(1992, 1998),          # orderYear
    st.integers(0, 10_000),           # extendedprice (integer money)
    st.integers(0, 8),                # discount in sixteenths
    st.integers(1, 50),               # quantity
)

sales_strategy = st.lists(sale_strategy, min_size=1, max_size=30)

SCHEMA = [
    ("region", "VARCHAR"),
    ("orderYear", "INTEGER"),
    ("extendedprice", "INTEGER"),
    ("sixteenths", "INTEGER"),
    ("quantity", "INTEGER"),
]

MEASURE_VIEW = """
    CREATE VIEW sales_m AS
    SELECT region, orderYear,
           SUM(extendedprice * (1 - sixteenths / 16.0)) AS MEASURE revenue,
           SUM(quantity) AS MEASURE total_qty
    FROM sales
"""

SUMMARY = """
    CREATE MATERIALIZED VIEW rev_by_region_year AS
    SELECT region, orderYear,
           AGGREGATE(revenue) AS revenue,
           AGGREGATE(total_qty) AS total_qty
    FROM sales_m GROUP BY region, orderYear
"""


def build(rows, *, summaries: bool) -> Database:
    db = Database()
    db.create_table_from_rows("sales", SCHEMA, rows)
    db.execute(MEASURE_VIEW)
    if summaries:
        db.execute(SUMMARY)
    return db


@settings(max_examples=60, deadline=None)
@given(sales_strategy)
def test_drilldown_additivity(rows):
    """Sum of revenue over any drill-down == revenue at the grand total."""
    db = build(rows, summaries=False)
    total = db.execute("SELECT AGGREGATE(revenue) FROM sales_m").rows[0][0]
    for dimension in ("region", "orderYear"):
        parts = db.execute(
            f"SELECT {dimension}, revenue FROM sales_m GROUP BY {dimension}"
        ).rows
        assert sum(part[1] for part in parts) == total
    # The same invariant through AT (ALL): every group sees the grand total.
    shares = db.execute(
        "SELECT region, revenue AT (ALL region) FROM sales_m GROUP BY region"
    ).rows
    assert all(value == total for _, value in shares)


@settings(max_examples=60, deadline=None)
@given(sales_strategy)
def test_summary_rollup_equals_cold(rows):
    """Roll-ups answered from the (region, year) summary are exactly the
    cold answers — binary-exact inputs make re-summed partials exact too."""
    cold = build(rows, summaries=False)
    hot = build(rows, summaries=True)
    for sql in (
        "SELECT region, revenue FROM sales_m GROUP BY region ORDER BY region",
        "SELECT orderYear, revenue, total_qty FROM sales_m GROUP BY orderYear ORDER BY orderYear",
        "SELECT AGGREGATE(total_qty) FROM sales_m",
    ):
        assert hot.execute(sql).rows == cold.execute(sql).rows, sql
    assert any(view["hits"] for view in hot.summary_stats().values())


dml_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), sale_strategy),
        st.tuples(st.just("refresh"), st.none()),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=40, deadline=None)
@given(sales_strategy, dml_strategy)
def test_matview_hit_equals_cold_after_interleaved_dml(rows, operations):
    """Arbitrary INSERT/REFRESH interleavings never let the summary serve a
    wrong answer: stale summaries are skipped, refreshed ones agree."""
    hot = build(rows, summaries=True)
    cold = build(rows, summaries=False)
    for kind, sale in operations:
        if kind == "insert":
            region, year, price, sixteenths, qty = sale
            dml = (
                f"INSERT INTO sales VALUES "
                f"('{region}', {year}, {price}, {sixteenths}, {qty})"
            )
            hot.execute(dml)
            cold.execute(dml)
        else:
            hot.execute("REFRESH MATERIALIZED VIEW rev_by_region_year")
    # A final refresh so the last interleaving suffix is also validated in
    # the hit path (without it the summary may be stale => cold fallback,
    # which is correct but tests nothing new).
    hot.execute("REFRESH MATERIALIZED VIEW rev_by_region_year")
    query = "SELECT region, revenue FROM sales_m GROUP BY region ORDER BY region"
    assert hot.execute(query).rows == cold.execute(query).rows
    assert any(view["hits"] for view in hot.summary_stats().values())
