"""Differential battery: every canonical TPC-H measure query vs SQLite.

Each query in :data:`repro.workloads.tpch.TPCH_QUERIES` is hand-expanded
here into the plain SQL it denotes (per the paper's expansion semantics) and
run on the standard library's sqlite3 over the same generated SF 0.001
tables.  The repro side runs through ``Database.expand`` under **all four
expansion strategies** — inline, window, subquery, auto — and every
strategy's output must agree with the oracle byte-for-byte after float
canonicalization.

A specialized strategy may refuse a query shape (``UnsupportedError``);
``subquery`` and ``auto`` must never refuse.  Float values are canonicalized
to 6 significant digits: the engine's partial-sum orders differ between
strategies, and ~1e7-scale revenue sums carry ~1e-5 of associativity noise,
far below the 6-digit bar.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import UnsupportedError
from repro.workloads.tpch import (
    TPCH_QUERIES,
    TPCH_TABLES,
    TpchConfig,
    generate_tpch,
    tpch_measure_database,
)

STRATEGIES = ("inline", "window", "subquery", "auto")

#: Strategies that must handle EVERY canonical query (the general fallback
#: and the cascade that ends in it).
TOTAL_STRATEGIES = {"subquery", "auto"}

CONFIG = TpchConfig(sf=0.001)

#: The revenue expression shared by most oracles.
_REV = "SUM(l.l_extendedprice * (1 - l.l_discount))"

#: lineitem joined out to region — SQLite spelling of the tpch_sales view.
_SALES_FROM = """
    FROM lineitem AS l
    JOIN orders AS o ON l.l_orderkey = o.o_orderkey
    JOIN partsupp AS ps
      ON l.l_partkey = ps.ps_partkey AND l.l_suppkey = ps.ps_suppkey
    JOIN customer AS c ON o.o_custkey = c.c_custkey
    JOIN nation AS n ON c.c_nationkey = n.n_nationkey
    JOIN region AS r ON n.n_regionkey = r.r_regionkey
"""

_ORDERS_FROM = """
    FROM orders AS o
    JOIN customer AS c ON o.o_custkey = c.c_custkey
    JOIN nation AS n ON c.c_nationkey = n.n_nationkey
    JOIN region AS r ON n.n_regionkey = r.r_regionkey
"""

_YEAR = "CAST(strftime('%Y', o.o_orderdate) AS INTEGER)"

#: Hand-expanded plain-SQL oracles, one per canonical query.  These are
#: written from the measure definitions directly (not via the engine's
#: expander), so they are an independent statement of what each query means.
ORACLES: dict[str, str] = {
    "revenue_by_region": f"""
        SELECT r.r_name, {_REV}
        {_SALES_FROM}
        GROUP BY r.r_name ORDER BY r.r_name
    """,
    "revenue_by_region_year": f"""
        SELECT r.r_name, {_YEAR} AS orderYear, {_REV}, SUM(l.l_quantity)
        {_SALES_FROM}
        GROUP BY r.r_name, orderYear ORDER BY r.r_name, orderYear
    """,
    "margin_by_returnflag": f"""
        SELECT l.l_returnflag,
               ({_REV} - SUM(ps.ps_supplycost * l.l_quantity)) / {_REV},
               AVG(l.l_discount)
        {_SALES_FROM}
        GROUP BY l.l_returnflag ORDER BY l.l_returnflag
    """,
    "orders_by_year": f"""
        SELECT {_YEAR} AS orderYear, COUNT(*)
        {_ORDERS_FROM}
        GROUP BY orderYear ORDER BY orderYear
    """,
    # AT (ALL region): the same measure evaluated with the region context
    # removed, i.e. the grand total.
    "revenue_share_by_region": f"""
        SELECT r.r_name, {_REV},
               {_REV} / (SELECT {_REV} {_SALES_FROM})
        {_SALES_FROM}
        GROUP BY r.r_name ORDER BY r.r_name
    """,
    # AT (SET orderYear = CURRENT orderYear - 1): re-evaluate per output row
    # with the year context shifted back one.
    "revenue_yoy_by_year": f"""
        SELECT cur.orderYear, cur.revenue, prev.revenue
        FROM (SELECT {_YEAR} AS orderYear, {_REV} AS revenue
              {_SALES_FROM} GROUP BY orderYear) AS cur
        LEFT JOIN (SELECT {_YEAR} AS orderYear, {_REV} AS revenue
                   {_SALES_FROM} GROUP BY orderYear) AS prev
          ON prev.orderYear = cur.orderYear - 1
        ORDER BY cur.orderYear
    """,
    # AT (VISIBLE) keeps the query's WHERE; the bare measure drops it (the
    # full region context), so the base count comes from a correlated
    # subquery without the segment filter.
    "visible_orders_by_region": f"""
        SELECT r.r_name,
               COUNT(*),
               (SELECT COUNT(*)
                FROM orders AS o2
                JOIN customer AS c2 ON o2.o_custkey = c2.c_custkey
                JOIN nation AS n2 ON c2.c_nationkey = n2.n_nationkey
                WHERE n2.n_regionkey = r.r_regionkey)
        {_ORDERS_FROM}
        WHERE c.c_mktsegment <> 'MACHINERY'
        GROUP BY r.r_name, r.r_regionkey ORDER BY r.r_name
    """,
}


@pytest.fixture(scope="module")
def oracle():
    """SQLite loaded with the exact same generated tables (dates as TEXT)."""
    tables = generate_tpch(CONFIG)
    connection = sqlite3.connect(":memory:")
    for name, columns in TPCH_TABLES.items():
        decls = ", ".join(
            f"{col} {'TEXT' if type_ in ('VARCHAR', 'DATE') else 'INTEGER' if type_ == 'INTEGER' else 'REAL'}"
            for col, type_ in columns
        )
        connection.execute(f"CREATE TABLE {name} ({decls})")
        placeholders = ", ".join("?" for _ in columns)
        connection.executemany(
            f"INSERT INTO {name} VALUES ({placeholders})", tables[name]
        )
    return connection


@pytest.fixture(scope="module")
def measure_db():
    return tpch_measure_database(CONFIG.sf, seed=CONFIG.seed)


def canonical(rows) -> list[tuple]:
    """Sorted rows with floats at 6 significant digits and dates as text."""

    def cell(value):
        if value is None:
            return "NULL"
        if isinstance(value, bool):
            return str(int(value))
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value)

    return sorted(tuple(cell(v) for v in row) for row in rows)


@pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
def test_canonical_query_matches_sqlite_oracle(name, oracle, measure_db):
    expected = canonical(oracle.execute(ORACLES[name]).fetchall())
    assert expected, name  # an empty oracle result would test nothing
    ran = []
    for strategy in STRATEGIES:
        try:
            expanded = measure_db.expand(TPCH_QUERIES[name], strategy=strategy)
        except UnsupportedError:
            assert strategy not in TOTAL_STRATEGIES, (
                f"{strategy} must support every canonical query ({name})"
            )
            continue
        got = canonical(measure_db.execute(expanded).rows)
        assert got == expected, f"{name} under strategy={strategy}"
        ran.append(strategy)
    assert TOTAL_STRATEGIES <= set(ran)


@pytest.mark.parametrize("name", sorted(TPCH_QUERIES))
def test_direct_execution_matches_sqlite_oracle(name, oracle, measure_db):
    """The unexpanded measure query itself (the path users actually run)."""
    expected = canonical(oracle.execute(ORACLES[name]).fetchall())
    got = canonical(measure_db.execute(TPCH_QUERIES[name]).rows)
    assert got == expected, name


def test_summary_hits_match_sqlite_oracle():
    """The matview-rewritten plans agree with the oracle too (to 6 digits:
    roll-ups re-associate float sums)."""
    db = tpch_measure_database(CONFIG.sf, seed=CONFIG.seed, summaries=True)
    tables = generate_tpch(CONFIG)
    connection = sqlite3.connect(":memory:")
    for name, columns in TPCH_TABLES.items():
        decls = ", ".join(f"{col} TEXT" for col, _ in columns)
        connection.execute(f"CREATE TABLE {name} ({decls})")
        connection.executemany(
            f"INSERT INTO {name} VALUES ({', '.join('?' for _ in columns)})",
            tables[name],
        )
    for name in ("revenue_by_region", "orders_by_year"):
        expected = canonical(connection.execute(ORACLES[name]).fetchall())
        assert canonical(db.execute(TPCH_QUERIES[name]).rows) == expected
    stats = db.summary_stats()
    assert any(view["hits"] for view in stats.values())
