"""Static expansion of grouping-set queries (UNION ALL rewrite)."""

from __future__ import annotations

import pytest

from repro import Database, UnsupportedError


@pytest.fixture
def gdb(paper_db: Database) -> Database:
    paper_db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, custName, YEAR(orderDate) AS y,
                  SUM(revenue) AS MEASURE rev
           FROM Orders"""
    )
    return paper_db


def check(db: Database, sql: str) -> str:
    expanded = db.expand(sql)
    assert sorted(db.execute(expanded).rows, key=repr) == sorted(
        db.execute(sql).rows, key=repr
    )
    return expanded


def test_rollup_two_keys(gdb):
    check(
        gdb,
        """SELECT prodName, custName, AGGREGATE(rev) AS r FROM eo
           GROUP BY ROLLUP(prodName, custName)""",
    )


def test_cube(gdb):
    expanded = check(
        gdb,
        """SELECT prodName, y, AGGREGATE(rev) AS r FROM eo
           GROUP BY CUBE(prodName, y)""",
    )
    assert expanded.count("UNION ALL") == 3  # four branches


def test_grouping_sets_explicit(gdb):
    check(
        gdb,
        """SELECT prodName, custName, rev AS r FROM eo
           GROUP BY GROUPING SETS ((prodName), (custName), ())""",
    )


def test_single_grouping_set_degenerates(gdb):
    expanded = check(
        gdb,
        """SELECT prodName, AGGREGATE(rev) AS r FROM eo
           GROUP BY GROUPING SETS ((prodName)) ORDER BY prodName""",
    )
    assert "UNION" not in expanded


def test_mixed_plain_and_rollup(gdb):
    check(
        gdb,
        """SELECT custName, prodName, rev AS r FROM eo
           GROUP BY custName, ROLLUP(prodName)""",
    )


def test_grouping_function_becomes_constant(gdb):
    expanded = check(
        gdb,
        """SELECT prodName, GROUPING(prodName) AS g, AGGREGATE(rev) AS r
           FROM eo GROUP BY ROLLUP(prodName)""",
    )
    assert "GROUPING" not in expanded


def test_grouping_in_having(gdb):
    check(
        gdb,
        """SELECT prodName, rev AS r FROM eo
           GROUP BY ROLLUP(prodName)
           HAVING GROUPING(prodName) = 1""",
    )


def test_order_by_alias_mapped_to_ordinal(gdb):
    expanded = check(
        gdb,
        """SELECT prodName, AGGREGATE(rev) AS r FROM eo
           GROUP BY ROLLUP(prodName) ORDER BY r DESC""",
    )
    assert "ORDER BY 2 DESC" in expanded


def test_order_by_key_expression_mapped(gdb):
    check(
        gdb,
        """SELECT prodName, rev AS r FROM eo
           GROUP BY ROLLUP(prodName)
           ORDER BY prodName NULLS LAST""",
    )


def test_visible_under_rollup(gdb):
    check(
        gdb,
        """SELECT prodName, rev AT (VISIBLE) AS viz, rev AS r FROM eo
           WHERE custName <> 'Bob' GROUP BY ROLLUP(prodName)""",
    )


def test_rollup_without_measures_also_expands(paper_db):
    check(
        paper_db,
        """SELECT prodName, SUM(revenue) AS r FROM Orders
           GROUP BY ROLLUP(prodName)""",
    )


def test_distinct_with_grouping_sets_unsupported(gdb):
    with pytest.raises(UnsupportedError):
        gdb.expand(
            """SELECT DISTINCT prodName, rev FROM eo GROUP BY ROLLUP(prodName)"""
        )


def test_limit_applies_to_whole_union(gdb):
    expanded = gdb.expand(
        """SELECT prodName, AGGREGATE(rev) AS r FROM eo
           GROUP BY ROLLUP(prodName) ORDER BY r DESC LIMIT 2"""
    )
    rows = gdb.execute(expanded).rows
    assert len(rows) == 2
    assert rows[0][1] == 25  # the grand total sorts first
