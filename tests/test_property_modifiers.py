"""Property test: random AT modifier chains against an independent oracle.

The oracle re-implements the context algebra of docs/SEMANTICS.md directly
over Python rows — no SQL involved — and must agree with the engine for any
random data and any random modifier chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database

PRODUCTS = ["p1", "p2"]
CUSTOMERS = ["c1", "c2", "c3"]
YEARS = [2021, 2022]

rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(PRODUCTS),
        st.sampled_from(CUSTOMERS),
        st.sampled_from(YEARS),
        st.integers(1, 9),
    ),
    min_size=1,
    max_size=15,
)


@dataclass(frozen=True)
class AllMod:
    dims: Optional[tuple[str, ...]]  # None = bare ALL


@dataclass(frozen=True)
class SetMod:
    dim: str
    value: object


@dataclass(frozen=True)
class WhereMod:
    dim: str
    value: object


def _mod():
    return st.one_of(
        st.just(AllMod(None)),
        st.sampled_from(["prod", "cust", "y"]).map(lambda d: AllMod((d,))),
        st.tuples(st.just("prod"), st.sampled_from(PRODUCTS)).map(lambda t: SetMod(*t)),
        st.tuples(st.just("cust"), st.sampled_from(CUSTOMERS)).map(lambda t: SetMod(*t)),
        st.tuples(st.just("y"), st.sampled_from(YEARS)).map(lambda t: SetMod(*t)),
        st.tuples(st.just("y"), st.sampled_from(YEARS)).map(lambda t: WhereMod(*t)),
    )


modifiers_strategy = st.lists(_mod(), min_size=0, max_size=4)

_COLUMN = {"prod": 0, "cust": 1, "y": 2}


def oracle(rows, group_value, modifiers):
    """Expected measure value: SUM(v) under the final context."""
    # Base context: the group term on prod.
    terms: dict[str, object] = {"prod": group_value}
    predicates = []
    for modifier in modifiers:
        if isinstance(modifier, AllMod):
            if modifier.dims is None:
                terms.clear()
                predicates.clear()
            else:
                for dim in modifier.dims:
                    terms.pop(dim, None)
        elif isinstance(modifier, SetMod):
            terms[modifier.dim] = modifier.value
        elif isinstance(modifier, WhereMod):
            terms.clear()
            predicates.clear()
            predicates.append((modifier.dim, modifier.value))
    total = None
    for row in rows:
        ok = all(row[_COLUMN[d]] == v for d, v in terms.items())
        ok = ok and all(row[_COLUMN[d]] == v for d, v in predicates)
        if ok:
            total = row[3] if total is None else total + row[3]
    return total


def render(modifiers) -> str:
    parts = []
    for modifier in modifiers:
        if isinstance(modifier, AllMod):
            parts.append("ALL" if modifier.dims is None else "ALL " + ", ".join(modifier.dims))
        elif isinstance(modifier, SetMod):
            value = f"'{modifier.value}'" if isinstance(modifier.value, str) else modifier.value
            parts.append(f"SET {modifier.dim} = {value}")
        else:
            value = f"'{modifier.value}'" if isinstance(modifier.value, str) else modifier.value
            parts.append(f"WHERE {modifier.dim} = {value}")
    return " ".join(parts)


@settings(max_examples=80, deadline=None)
@given(rows_strategy, modifiers_strategy)
def test_modifier_chain_matches_oracle(rows, modifiers):
    db = Database()
    db.create_table_from_rows(
        "t",
        [("prod", "VARCHAR"), ("cust", "VARCHAR"), ("y", "INTEGER"), ("v", "INTEGER")],
        rows,
    )
    db.execute(
        "CREATE VIEW m AS SELECT prod, cust, y, SUM(v) AS MEASURE total FROM t"
    )
    use = "total" if not modifiers else f"total AT ({render(modifiers)})"
    result = db.execute(f"SELECT prod, {use} AS x FROM m GROUP BY prod").rows
    for prod, measured in result:
        assert measured == oracle(rows, prod, modifiers), (
            prod,
            render(modifiers),
            rows,
        )


@settings(max_examples=40, deadline=None)
@given(rows_strategy, modifiers_strategy)
def test_modifier_chain_interpreter_equals_expansion(rows, modifiers):
    db = Database()
    db.create_table_from_rows(
        "t",
        [("prod", "VARCHAR"), ("cust", "VARCHAR"), ("y", "INTEGER"), ("v", "INTEGER")],
        rows,
    )
    db.execute(
        "CREATE VIEW m AS SELECT prod, cust, y, SUM(v) AS MEASURE total FROM t"
    )
    use = "total" if not modifiers else f"total AT ({render(modifiers)})"
    sql = f"SELECT prod, {use} AS x FROM m GROUP BY prod ORDER BY prod"
    assert db.execute(db.expand(sql)).rows == db.execute(sql).rows


@dataclass(frozen=True)
class VisibleMod:
    pass


def _mod_with_visible():
    return st.one_of(_mod(), st.just(VisibleMod()))


def render_with_visible(modifiers) -> str:
    parts = []
    for modifier in modifiers:
        if isinstance(modifier, VisibleMod):
            parts.append("VISIBLE")
        elif isinstance(modifier, AllMod):
            parts.append("ALL" if modifier.dims is None else "ALL " + ", ".join(modifier.dims))
        elif isinstance(modifier, SetMod):
            value = f"'{modifier.value}'" if isinstance(modifier.value, str) else modifier.value
            parts.append(f"SET {modifier.dim} = {value}")
        else:
            value = f"'{modifier.value}'" if isinstance(modifier.value, str) else modifier.value
            parts.append(f"WHERE {modifier.dim} = {value}")
    return " ".join(parts)


def oracle_with_visible(rows, group_value, modifiers, query_year):
    """Like :func:`oracle`, with the query filtered to y = query_year and
    VISIBLE adding that restriction as a predicate term."""
    terms: dict[str, object] = {"prod": group_value}
    predicates = []
    for modifier in modifiers:
        if isinstance(modifier, VisibleMod):
            predicates.append(("y", query_year))
        elif isinstance(modifier, AllMod):
            if modifier.dims is None:
                terms.clear()
                predicates.clear()
            else:
                for dim in modifier.dims:
                    terms.pop(dim, None)
        elif isinstance(modifier, SetMod):
            terms[modifier.dim] = modifier.value
        elif isinstance(modifier, WhereMod):
            terms.clear()
            predicates.clear()
            predicates.append((modifier.dim, modifier.value))
    total = None
    for row in rows:
        ok = all(row[_COLUMN[d]] == v for d, v in terms.items())
        ok = ok and all(row[_COLUMN[d]] == v for d, v in predicates)
        if ok:
            total = row[3] if total is None else total + row[3]
    return total


@settings(max_examples=60, deadline=None)
@given(
    rows_strategy,
    st.lists(_mod_with_visible(), min_size=0, max_size=4),
    st.sampled_from(YEARS),
)
def test_modifier_chain_with_visible_matches_oracle(rows, modifiers, query_year):
    db = Database()
    db.create_table_from_rows(
        "t",
        [("prod", "VARCHAR"), ("cust", "VARCHAR"), ("y", "INTEGER"), ("v", "INTEGER")],
        rows,
    )
    db.execute(
        "CREATE VIEW m AS SELECT prod, cust, y, SUM(v) AS MEASURE total FROM t"
    )
    use = "total" if not modifiers else f"total AT ({render_with_visible(modifiers)})"
    result = db.execute(
        f"SELECT prod, {use} AS x FROM m WHERE y = {query_year} GROUP BY prod"
    ).rows
    for prod, measured in result:
        expected = oracle_with_visible(rows, prod, modifiers, query_year)
        assert measured == expected, (prod, render_with_visible(modifiers), rows)
