"""Composability (paper section 5.4): re-export through queries, measures
over measures, nesting depth, and closure of the query language."""

from __future__ import annotations

import pytest

from repro import Database, UnsupportedError


@pytest.fixture
def base(paper_db: Database) -> Database:
    paper_db.execute(
        """CREATE VIEW eo AS
           SELECT prodName, custName, YEAR(orderDate) AS orderYear,
                  SUM(revenue) AS MEASURE rev,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
           FROM Orders"""
    )
    return paper_db


def test_reexport_through_projection(base):
    """SELECTing a measure column from a non-aggregate query re-exports it."""
    rows = base.execute(
        """SELECT prodName, AGGREGATE(rev) FROM
           (SELECT prodName, rev FROM eo)
           GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert rows == [("Acme", 5), ("Happy", 17), ("Whizz", 3)]


def test_reexport_narrows_dimensionality(base):
    """After projecting only prodName, custName is no longer a dimension;
    grouping by it in an outer query is simply impossible (closure)."""
    rows = base.execute(
        """SELECT prodName, AGGREGATE(rev) AS r FROM
           (SELECT prodName, rev FROM eo)
           GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert [r[0] for r in rows] == ["Acme", "Happy", "Whizz"]


def test_reexport_bakes_where(base):
    """A re-exporting query's WHERE becomes part of the new measure."""
    rows = base.execute(
        """SELECT prodName, AGGREGATE(rev) AS r, rev AT (ALL) AS total FROM
           (SELECT prodName, rev FROM eo WHERE custName = 'Alice')
           GROUP BY prodName ORDER BY prodName"""
    ).rows
    # Even AT (ALL) cannot reach Bob's and Celia's orders any more.
    assert rows == [("Happy", 13, 13)]


def test_reexport_through_cte(base):
    rows = base.execute(
        """WITH narrowed AS (SELECT prodName, margin FROM eo)
           SELECT prodName, AGGREGATE(margin) FROM narrowed
           GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert [(r[0], round(r[1], 2)) for r in rows] == [
        ("Acme", 0.60),
        ("Happy", 0.47),
        ("Whizz", 0.67),
    ]


def test_reexport_with_renamed_dimension(base):
    rows = base.execute(
        """SELECT product, AGGREGATE(rev) FROM
           (SELECT prodName AS product, rev FROM eo)
           GROUP BY product ORDER BY product"""
    ).rows
    assert rows == [("Acme", 5), ("Happy", 17), ("Whizz", 3)]


def test_measure_over_measure(base):
    """AGGREGATE(m) AS MEASURE m2 composes a new measure (section 5.4)."""
    rows = base.execute(
        """SELECT prodName, AGGREGATE(m2) FROM
           (SELECT prodName, AGGREGATE(margin) AS MEASURE m2 FROM eo)
           GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert [(r[0], round(r[1], 2)) for r in rows] == [
        ("Acme", 0.60),
        ("Happy", 0.47),
        ("Whizz", 0.67),
    ]


def test_measure_over_measure_grand_total(base):
    value = base.execute(
        """SELECT AGGREGATE(m2) FROM
           (SELECT prodName, AGGREGATE(margin) AS MEASURE m2 FROM eo)"""
    ).scalar()
    assert value == pytest.approx((25 - 12) / 25)


def test_composed_measure_with_baked_where(base):
    """The composing query's WHERE restricts the inner measure's rows."""
    rows = base.execute(
        """SELECT prodName, AGGREGATE(m2) FROM
           (SELECT prodName, AGGREGATE(rev) AS MEASURE m2 FROM eo
            WHERE custName = 'Alice')
           GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert rows == [("Happy", 13)]


def test_composed_measure_mixed_with_scalar(base):
    rows = base.execute(
        """SELECT prodName, AGGREGATE(big) FROM
           (SELECT prodName, AGGREGATE(rev) * 100 AS MEASURE big FROM eo)
           GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert rows == [("Acme", 500), ("Happy", 1700), ("Whizz", 300)]


def test_three_level_nesting(base):
    value = base.execute(
        """SELECT AGGREGATE(m3) FROM
           (SELECT prodName, AGGREGATE(m2) AS MEASURE m3 FROM
              (SELECT prodName, custName, AGGREGATE(rev) AS MEASURE m2 FROM eo))
        """
    ).scalar()
    assert value == 25


def test_queries_over_measure_views_stay_closed(base):
    """Queries over tables with measures return tables usable in queries."""
    value = base.execute(
        """SELECT SUM(r) FROM
           (SELECT prodName, AGGREGATE(rev) AS r FROM eo GROUP BY prodName)"""
    ).scalar()
    assert value == 25


def test_aggregated_query_evaluates_measures_to_plain_columns(base):
    """A GROUP BY query over a measure view returns plain values (no longer
    measures): using them in an outer aggregate is ordinary SQL."""
    value = base.execute(
        """SELECT MAX(r) FROM
           (SELECT prodName, AGGREGATE(rev) AS r FROM eo GROUP BY prodName)"""
    ).scalar()
    assert value == 17


def test_reexport_from_two_sources_rejected(paper_db):
    paper_db.execute("CREATE VIEW a1 AS SELECT *, SUM(revenue) AS MEASURE m1 FROM Orders")
    paper_db.execute("CREATE VIEW a2 AS SELECT *, AVG(custAge) AS MEASURE m2 FROM Customers")
    with pytest.raises(UnsupportedError):
        paper_db.execute(
            """SELECT prodName, AGGREGATE(x) FROM
               (SELECT o.prodName, o.m1 AS x, c.m2 AS y
                FROM a1 AS o JOIN a2 AS c USING (custName))
               GROUP BY prodName"""
        )


def test_mixing_reexport_and_definition_rejected(base):
    from repro import MeasureError

    with pytest.raises(MeasureError):
        base.execute(
            """SELECT prodName, rev, SUM(1) AS MEASURE one FROM eo"""
        )


def test_measure_view_over_csv_like_values(db):
    """Views with measures can sit on relations without measures (5.4)."""
    db.execute("CREATE VIEW nums AS SELECT col1 AS k, col2 AS v FROM (VALUES ('a', 1), ('a', 2), ('b', 5)) AS t")
    db.execute("CREATE VIEW mnums AS SELECT k, SUM(v) AS MEASURE total FROM nums")
    rows = db.execute(
        "SELECT k, AGGREGATE(total) FROM mnums GROUP BY k ORDER BY k"
    ).rows
    assert rows == [("a", 3), ("b", 5)]
