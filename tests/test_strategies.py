"""Inline and window rewrite strategies (paper sections 5.1 and 6.4)."""

from __future__ import annotations

import pytest

from repro import Database, UnsupportedError


@pytest.fixture
def sdb(paper_db: Database) -> Database:
    paper_db.execute(
        """CREATE VIEW eo AS
           SELECT orderDate, prodName,
                  SUM(revenue) AS MEASURE rev,
                  (SUM(revenue) - SUM(cost)) / SUM(revenue) AS MEASURE margin
           FROM Orders"""
    )
    return paper_db


def test_inline_simple_group_by(sdb):
    sql = "SELECT prodName, AGGREGATE(margin) AS m FROM eo GROUP BY prodName ORDER BY prodName"
    inlined = sdb.expand(sql, strategy="inline")
    # The inline rewrite reads the source directly: no subqueries at all.
    assert "(SELECT" not in inlined
    assert "FROM Orders" in inlined
    assert sdb.execute(inlined).rows == sdb.execute(sql).rows


def test_inline_with_where(sdb):
    sql = """SELECT prodName, AGGREGATE(rev) AS r FROM eo
             WHERE prodName <> 'Acme' GROUP BY prodName ORDER BY prodName"""
    inlined = sdb.expand(sql, strategy="inline")
    assert sdb.execute(inlined).rows == sdb.execute(sql).rows


def test_inline_multiple_measures(sdb):
    sql = """SELECT prodName, AGGREGATE(rev) AS r, AGGREGATE(margin) AS m
             FROM eo GROUP BY prodName ORDER BY prodName"""
    assert sdb.execute(sdb.expand(sql, strategy="inline")).rows == sdb.execute(sql).rows


def test_inline_rejects_at_modifiers(sdb):
    with pytest.raises(UnsupportedError):
        sdb.expand(
            "SELECT prodName, rev AT (ALL) FROM eo GROUP BY prodName",
            strategy="inline",
        )


def test_inline_rejects_bare_measures(sdb):
    # Bare uses ignore the WHERE clause; inlining would not.
    with pytest.raises(UnsupportedError):
        sdb.expand(
            "SELECT prodName, rev FROM eo WHERE prodName <> 'Acme' GROUP BY prodName",
            strategy="inline",
        )


def test_inline_rejects_joins(sdb):
    with pytest.raises(UnsupportedError):
        sdb.expand(
            """SELECT o.prodName, AGGREGATE(o.rev) FROM eo AS o
               JOIN Customers AS c ON 1 = 1 GROUP BY o.prodName""",
            strategy="inline",
        )


def test_inline_rejects_non_aggregate(sdb):
    with pytest.raises(UnsupportedError):
        sdb.expand("SELECT orderDate FROM eo", strategy="inline")


def test_window_rewrite_listing12(sdb):
    sql = """SELECT o.prodName, o.orderDate FROM
             (SELECT prodName, orderDate, revenue, AVG(revenue) AS MEASURE avgRevenue
              FROM Orders) AS o
             WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)
             ORDER BY 1, 2"""
    windowed = sdb.expand(sql, strategy="window")
    assert "OVER (PARTITION BY" in windowed
    assert sdb.execute(windowed).rows == sdb.execute(sql).rows


def test_window_rewrite_bare_measure_partitions_by_all_dims(paper_db):
    paper_db.execute(
        """CREATE VIEW rm AS
           SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders"""
    )
    sql = "SELECT prodName, r FROM rm ORDER BY prodName"
    windowed = paper_db.expand(sql, strategy="window")
    assert paper_db.execute(windowed).rows == paper_db.execute(sql).rows


def test_window_rejects_aggregate_queries(sdb):
    with pytest.raises(UnsupportedError):
        sdb.expand(
            "SELECT prodName, AGGREGATE(rev) FROM eo GROUP BY prodName",
            strategy="window",
        )


def test_window_rejects_non_equality_at_where(sdb):
    with pytest.raises(UnsupportedError):
        sdb.expand(
            """SELECT orderDate FROM eo
               WHERE rev AT (WHERE prodName <> eo.prodName) > 1""",
            strategy="window",
        )


def test_window_rejects_other_modifiers(sdb):
    with pytest.raises(UnsupportedError):
        sdb.expand("SELECT orderDate, rev AT (ALL) FROM eo", strategy="window")


def test_unknown_strategy_rejected(sdb):
    with pytest.raises(UnsupportedError):
        sdb.expand("SELECT 1", strategy="quantum")


def test_auto_prefers_inline(sdb):
    sql = "SELECT prodName, AGGREGATE(margin) AS m FROM eo GROUP BY prodName ORDER BY prodName"
    auto = sdb.expand(sql, strategy="auto")
    assert auto == sdb.expand(sql, strategy="inline")
    assert sdb.execute(auto).rows == sdb.execute(sql).rows


def test_auto_falls_back_to_window(sdb):
    # A row-grain AT query: inline refuses (no GROUP BY aggregate shape),
    # window handles it.
    sql = """SELECT o.prodName, o.orderDate FROM
             (SELECT prodName, orderDate, revenue, AVG(revenue) AS MEASURE avgRevenue
              FROM Orders) AS o
             WHERE o.revenue > o.avgRevenue AT (WHERE prodName = o.prodName)
             ORDER BY 1, 2"""
    auto = sdb.expand(sql, strategy="auto")
    assert auto == sdb.expand(sql, strategy="window")
    assert sdb.execute(auto).rows == sdb.execute(sql).rows


def test_auto_falls_back_to_subquery(sdb):
    # AT (ALL) in an aggregate query: both specialized strategies refuse,
    # the general correlated-subquery expansion handles it.
    sql = """SELECT prodName, rev AT (ALL) AS total FROM eo
             GROUP BY prodName ORDER BY prodName"""
    with pytest.raises(UnsupportedError):
        sdb.expand(sql, strategy="inline")
    with pytest.raises(UnsupportedError):
        sdb.expand(sql, strategy="window")
    auto = sdb.expand(sql, strategy="auto")
    assert auto == sdb.expand(sql, strategy="subquery")
    assert sdb.execute(auto).rows == sdb.execute(sql).rows


def test_multi_agg_formula_becomes_multiple_window_calls(sdb):
    """(SUM(revenue)-SUM(cost))/SUM(revenue) needs each aggregate windowed."""
    sql = """SELECT prodName, margin AT (WHERE prodName = eo.prodName) AS m
             FROM eo ORDER BY prodName, orderDate"""
    windowed = sdb.expand(sql, strategy="window")
    assert windowed.count("OVER") >= 2
    assert sdb.execute(windowed).rows == sdb.execute(sql).rows
