"""Join execution: inner/outer/cross, USING, NATURAL, null padding."""

from __future__ import annotations

import pytest

from repro import BindError, Database


@pytest.fixture
def jdb(db: Database) -> Database:
    db.execute("CREATE TABLE l (k INTEGER, lv VARCHAR)")
    db.execute("CREATE TABLE r (k INTEGER, rv VARCHAR)")
    db.execute("INSERT INTO l VALUES (1, 'l1'), (2, 'l2'), (3, 'l3')")
    db.execute("INSERT INTO r VALUES (2, 'r2'), (3, 'r3'), (4, 'r4')")
    return db


def test_inner_join(jdb):
    rows = jdb.execute(
        "SELECT l.k, lv, rv FROM l JOIN r ON l.k = r.k ORDER BY l.k"
    ).rows
    assert rows == [(2, "l2", "r2"), (3, "l3", "r3")]


def test_left_join_pads_nulls(jdb):
    rows = jdb.execute(
        "SELECT l.k, rv FROM l LEFT JOIN r ON l.k = r.k ORDER BY l.k"
    ).rows
    assert rows == [(1, None), (2, "r2"), (3, "r3")]


def test_right_join(jdb):
    rows = jdb.execute(
        "SELECT r.k, lv FROM l RIGHT JOIN r ON l.k = r.k ORDER BY r.k"
    ).rows
    assert rows == [(2, "l2"), (3, "l3"), (4, None)]


def test_full_join(jdb):
    rows = jdb.execute(
        """SELECT l.k, r.k FROM l FULL JOIN r ON l.k = r.k
           ORDER BY l.k NULLS LAST, r.k NULLS LAST"""
    ).rows
    assert rows == [(1, None), (2, 2), (3, 3), (None, 4)]


def test_cross_join_cardinality(jdb):
    assert len(jdb.execute("SELECT 1 FROM l CROSS JOIN r").rows) == 9


def test_comma_join_is_cross(jdb):
    assert len(jdb.execute("SELECT 1 FROM l, r").rows) == 9


def test_join_using(jdb):
    rows = jdb.execute("SELECT lv, rv FROM l JOIN r USING (k) ORDER BY lv").rows
    assert rows == [("l2", "r2"), ("l3", "r3")]


def test_using_column_unqualified_resolves(jdb):
    rows = jdb.execute("SELECT k FROM l JOIN r USING (k) ORDER BY 1").rows
    assert rows == [(2,), (3,)]


def test_natural_join(jdb):
    rows = jdb.execute("SELECT lv, rv FROM l NATURAL JOIN r ORDER BY lv").rows
    assert rows == [("l2", "r2"), ("l3", "r3")]


def test_natural_join_without_common_columns_raises(db):
    db.execute("CREATE TABLE a (x INTEGER)")
    db.execute("CREATE TABLE b (y INTEGER)")
    with pytest.raises(BindError):
        db.execute("SELECT 1 FROM a NATURAL JOIN b")


def test_join_on_arbitrary_predicate(jdb):
    rows = jdb.execute(
        "SELECT l.k, r.k FROM l JOIN r ON l.k < r.k ORDER BY l.k, r.k"
    ).rows
    assert rows == [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)]


def test_three_way_join(jdb):
    jdb.execute("CREATE TABLE m (k INTEGER, mv VARCHAR)")
    jdb.execute("INSERT INTO m VALUES (2, 'm2'), (3, 'm3')")
    rows = jdb.execute(
        """SELECT lv, mv, rv FROM l
           JOIN m ON l.k = m.k
           JOIN r ON m.k = r.k
           ORDER BY lv"""
    ).rows
    assert rows == [("l2", "m2", "r2"), ("l3", "m3", "r3")]


def test_join_subquery(jdb):
    rows = jdb.execute(
        """SELECT l.k, big.rv FROM l
           JOIN (SELECT k, rv FROM r WHERE k > 2) AS big ON l.k = big.k"""
    ).rows
    assert rows == [(3, "r3")]


def test_left_join_aggregation_counts_padded_rows(jdb):
    rows = jdb.execute(
        """SELECT l.k, COUNT(rv) FROM l LEFT JOIN r ON l.k = r.k
           GROUP BY l.k ORDER BY l.k"""
    ).rows
    assert rows == [(1, 0), (2, 1), (3, 1)]


def test_duplicate_keys_multiply(db):
    db.execute("CREATE TABLE d1 (k INTEGER)")
    db.execute("CREATE TABLE d2 (k INTEGER)")
    db.execute("INSERT INTO d1 VALUES (1), (1)")
    db.execute("INSERT INTO d2 VALUES (1), (1), (1)")
    assert len(db.execute("SELECT 1 FROM d1 JOIN d2 ON d1.k = d2.k").rows) == 6


def test_join_condition_null_is_no_match(db):
    db.execute("CREATE TABLE n1 (k INTEGER)")
    db.execute("CREATE TABLE n2 (k INTEGER)")
    db.execute("INSERT INTO n1 VALUES (NULL), (1)")
    db.execute("INSERT INTO n2 VALUES (NULL), (1)")
    rows = db.execute("SELECT n1.k, n2.k FROM n1 JOIN n2 ON n1.k = n2.k").rows
    assert rows == [(1, 1)]


def test_self_join_with_aliases(jdb):
    rows = jdb.execute(
        """SELECT a.k, b.k FROM l AS a JOIN l AS b ON a.k + 1 = b.k
           ORDER BY a.k"""
    ).rows
    assert rows == [(1, 2), (2, 3)]


def test_parenthesized_join_tree(jdb):
    rows = jdb.execute(
        "SELECT l.k FROM (l JOIN r ON l.k = r.k) WHERE rv = 'r2'"
    ).rows
    assert rows == [(2,)]
