"""Optimizer rules: constant folding, filter merge/pushdown, identity
projects — and that optimization never changes results."""

from __future__ import annotations

import pytest

from repro import Database
from repro.engine.evaluator import ExecutionContext
from repro.engine.executor import execute_plan
from repro.plan import logical as plans
from repro.plan.optimizer import optimize
from repro.semantics.binder import Binder
from repro.sql import parse_query
from repro.workloads.paper_data import load_paper_tables


@pytest.fixture
def pdb(db: Database) -> Database:
    load_paper_tables(db)
    return db


def plan_of(db: Database, sql: str) -> plans.LogicalPlan:
    binder = Binder(db.catalog)
    plan, _ = binder.bind_query_top(parse_query(sql))
    return plan


def run(db: Database, plan: plans.LogicalPlan) -> list[tuple]:
    return execute_plan(plan, ExecutionContext(db.catalog))


def test_constant_folding_in_projection(pdb):
    plan = optimize(plan_of(pdb, "SELECT 1 + 2 * 3 FROM Orders"))
    project = next(p for p in plan.walk() if isinstance(p, plans.Project))
    from repro.semantics.bound import BoundLiteral

    assert isinstance(project.exprs[0], BoundLiteral)
    assert project.exprs[0].value == 7


def test_true_filter_eliminated(pdb):
    plan = optimize(plan_of(pdb, "SELECT prodName FROM Orders WHERE 1 = 1"))
    assert not any(isinstance(p, plans.Filter) for p in plan.walk())


def test_filters_merged(pdb):
    """Nested filtered subqueries collapse into a single Filter."""
    sql = """SELECT prodName FROM
             (SELECT * FROM (SELECT * FROM Orders WHERE revenue > 3)
              WHERE cost > 1)
             WHERE prodName <> 'Acme'"""
    plan = optimize(plan_of(pdb, sql))
    filters = [p for p in plan.walk() if isinstance(p, plans.Filter)]
    assert len(filters) == 1


def test_filter_pushed_into_join_sides(pdb):
    sql = """SELECT 1 FROM Orders AS o JOIN Customers AS c
             ON o.custName = c.custName
             WHERE o.revenue > 3 AND c.custAge > 20"""
    plan = optimize(plan_of(pdb, sql))
    join = next(p for p in plan.walk() if isinstance(p, plans.Join))
    assert isinstance(join.left, plans.Filter)
    assert isinstance(join.right, plans.Filter)


def test_cross_side_predicate_stays_above_join(pdb):
    sql = """SELECT 1 FROM Orders AS o JOIN Customers AS c
             ON o.custName = c.custName
             WHERE o.revenue > c.custAge"""
    plan = optimize(plan_of(pdb, sql))
    join = next(p for p in plan.walk() if isinstance(p, plans.Join))
    assert not isinstance(join.left, plans.Filter)
    assert not isinstance(join.right, plans.Filter)


def test_outer_join_filter_not_pushed(pdb):
    sql = """SELECT 1 FROM Orders AS o LEFT JOIN Customers AS c
             ON o.custName = c.custName
             WHERE o.revenue > 3"""
    plan = optimize(plan_of(pdb, sql))
    join = next(p for p in plan.walk() if isinstance(p, plans.Join))
    assert not isinstance(join.left, plans.Filter)


QUERIES = [
    "SELECT prodName, SUM(revenue) FROM Orders WHERE cost > 1 GROUP BY prodName ORDER BY prodName",
    """SELECT o.prodName, c.custAge FROM Orders AS o JOIN Customers AS c
       ON o.custName = c.custName WHERE o.revenue > 2 AND c.custAge > 18
       ORDER BY 1, 2""",
    "SELECT prodName FROM Orders WHERE 2 > 1 AND revenue > 3 ORDER BY prodName",
    """SELECT prodName, SUM(revenue) FROM Orders GROUP BY ROLLUP(prodName)
       ORDER BY prodName NULLS LAST""",
    """SELECT prodName, r FROM
       (SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders)
       GROUP BY prodName ORDER BY prodName""",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_optimizer_preserves_results(pdb, sql):
    raw = plan_of(pdb, sql)
    optimized = optimize(plan_of(pdb, sql))
    assert run(pdb, optimized) == run(pdb, raw)


def test_database_optimizer_flag(pdb):
    hot = pdb.execute(QUERIES[0]).rows
    cold_db = Database(optimizer=False)
    load_paper_tables(cold_db)
    assert cold_db.execute(QUERIES[0]).rows == hot


def test_pushdown_reduces_join_work(pdb):
    """With pushdown, fewer combined rows are tested by the join."""
    sql = """SELECT 1 FROM Orders AS o JOIN Customers AS c
             ON o.custName = c.custName WHERE o.revenue > 6"""
    raw = plan_of(pdb, sql)
    opt = optimize(plan_of(pdb, sql))
    # Both return one row (revenue 7 > 6), but the optimized join scans a
    # pre-filtered left input.
    assert run(pdb, raw) == run(pdb, opt)
    join = next(p for p in opt.walk() if isinstance(p, plans.Join))
    assert isinstance(join.left, plans.Filter)
