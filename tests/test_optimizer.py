"""Optimizer rules: constant folding, filter merge/pushdown, identity
projects — and that optimization never changes results."""

from __future__ import annotations

import pytest

from repro import Database
from repro.engine.evaluator import ExecutionContext
from repro.engine.executor import execute_plan
from repro.plan import logical as plans
from repro.plan.optimizer import optimize
from repro.semantics.binder import Binder
from repro.sql import parse_query
from repro.workloads.paper_data import load_paper_tables


@pytest.fixture
def pdb(db: Database) -> Database:
    load_paper_tables(db)
    return db


def plan_of(db: Database, sql: str) -> plans.LogicalPlan:
    binder = Binder(db.catalog)
    plan, _ = binder.bind_query_top(parse_query(sql))
    return plan


def run(db: Database, plan: plans.LogicalPlan) -> list[tuple]:
    return execute_plan(plan, ExecutionContext(db.catalog))


def test_constant_folding_in_projection(pdb):
    plan = optimize(plan_of(pdb, "SELECT 1 + 2 * 3 FROM Orders"))
    project = next(p for p in plan.walk() if isinstance(p, plans.Project))
    from repro.semantics.bound import BoundLiteral

    assert isinstance(project.exprs[0], BoundLiteral)
    assert project.exprs[0].value == 7


def test_true_filter_eliminated(pdb):
    plan = optimize(plan_of(pdb, "SELECT prodName FROM Orders WHERE 1 = 1"))
    assert not any(isinstance(p, plans.Filter) for p in plan.walk())


def test_filters_merged(pdb):
    """Nested filtered subqueries collapse into a single Filter."""
    sql = """SELECT prodName FROM
             (SELECT * FROM (SELECT * FROM Orders WHERE revenue > 3)
              WHERE cost > 1)
             WHERE prodName <> 'Acme'"""
    plan = optimize(plan_of(pdb, sql))
    filters = [p for p in plan.walk() if isinstance(p, plans.Filter)]
    assert len(filters) == 1


def test_filter_pushed_into_join_sides(pdb):
    sql = """SELECT 1 FROM Orders AS o JOIN Customers AS c
             ON o.custName = c.custName
             WHERE o.revenue > 3 AND c.custAge > 20"""
    plan = optimize(plan_of(pdb, sql))
    join = next(p for p in plan.walk() if isinstance(p, plans.Join))
    assert isinstance(join.left, plans.Filter)
    assert isinstance(join.right, plans.Filter)


def test_cross_side_predicate_stays_above_join(pdb):
    sql = """SELECT 1 FROM Orders AS o JOIN Customers AS c
             ON o.custName = c.custName
             WHERE o.revenue > c.custAge"""
    plan = optimize(plan_of(pdb, sql))
    join = next(p for p in plan.walk() if isinstance(p, plans.Join))
    assert not isinstance(join.left, plans.Filter)
    assert not isinstance(join.right, plans.Filter)


def test_outer_join_filter_not_pushed(pdb):
    sql = """SELECT 1 FROM Orders AS o LEFT JOIN Customers AS c
             ON o.custName = c.custName
             WHERE o.revenue > 3"""
    plan = optimize(plan_of(pdb, sql))
    join = next(p for p in plan.walk() if isinstance(p, plans.Join))
    assert not isinstance(join.left, plans.Filter)


QUERIES = [
    "SELECT prodName, SUM(revenue) FROM Orders WHERE cost > 1 GROUP BY prodName ORDER BY prodName",
    """SELECT o.prodName, c.custAge FROM Orders AS o JOIN Customers AS c
       ON o.custName = c.custName WHERE o.revenue > 2 AND c.custAge > 18
       ORDER BY 1, 2""",
    "SELECT prodName FROM Orders WHERE 2 > 1 AND revenue > 3 ORDER BY prodName",
    """SELECT prodName, SUM(revenue) FROM Orders GROUP BY ROLLUP(prodName)
       ORDER BY prodName NULLS LAST""",
    """SELECT prodName, r FROM
       (SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders)
       GROUP BY prodName ORDER BY prodName""",
]


@pytest.mark.parametrize("sql", QUERIES)
def test_optimizer_preserves_results(pdb, sql):
    raw = plan_of(pdb, sql)
    optimized = optimize(plan_of(pdb, sql))
    assert run(pdb, optimized) == run(pdb, raw)


def test_database_optimizer_flag(pdb):
    hot = pdb.execute(QUERIES[0]).rows
    cold_db = Database(optimizer=False)
    load_paper_tables(cold_db)
    assert cold_db.execute(QUERIES[0]).rows == hot


def test_pushdown_reduces_join_work(pdb):
    """With pushdown, fewer combined rows are tested by the join."""
    sql = """SELECT 1 FROM Orders AS o JOIN Customers AS c
             ON o.custName = c.custName WHERE o.revenue > 6"""
    raw = plan_of(pdb, sql)
    opt = optimize(plan_of(pdb, sql))
    # Both return one row (revenue 7 > 6), but the optimized join scans a
    # pre-filtered left input.
    assert run(pdb, raw) == run(pdb, opt)
    join = next(p for p in opt.walk() if isinstance(p, plans.Join))
    assert isinstance(join.left, plans.Filter)


def _deep_join_sql(levels: int) -> str:
    """A left-deep join chain with a top-level filter on the deepest table.

    Filter pushdown moves the predicate one join level per optimizer pass,
    so ``levels`` joins need roughly ``levels`` passes to converge — well
    past the old hard-coded 5-iteration cutoff.
    """
    joins = " ".join(
        f"JOIN Customers AS c{i} ON o.custName = c{i}.custName"
        for i in range(levels)
    )
    return f"SELECT 1 FROM Orders AS o {joins} WHERE o.revenue > 6"


def test_fixpoint_reached_on_deep_join_chains(pdb):
    """optimize() used to stop silently after 5 passes, leaving the filter
    stranded mid-chain; it must now iterate to an actual fixpoint."""
    from repro.plan.optimizer import _rewrite

    sql = _deep_join_sql(8)
    optimized = optimize(plan_of(pdb, sql))
    _, changed = _rewrite(optimized)
    assert not changed, "optimize() returned before reaching a fixpoint"
    # The pushed-down filter sits directly on the Orders scan.
    scans = [p for p in optimized.walk() if isinstance(p, plans.Scan)]
    assert scans, "expected Scan nodes"
    assert run(pdb, optimized) == run(pdb, plan_of(pdb, sql))


def test_fixpoint_cap_raises_internal_error(pdb, monkeypatch):
    from repro import InternalError
    from repro.plan import optimizer as opt_module

    monkeypatch.setattr(opt_module, "MAX_PASSES", 1)
    with pytest.raises(InternalError):
        optimize(plan_of(pdb, _deep_join_sql(8)))


def test_fixpoint_with_case_expressions(pdb):
    """CASE predicates used to be rebuilt (identically) every pass because
    tuple-valued WHEN arms lost node identity in transform_expr, so the loop
    never observed convergence."""
    sql = """SELECT CASE prodName WHEN 'Acme' THEN 'a' ELSE 'b' END
             FROM Orders WHERE revenue = 5"""
    optimized = optimize(plan_of(pdb, sql))
    from repro.plan.optimizer import _rewrite

    _, changed = _rewrite(optimized)
    assert not changed
    assert run(pdb, optimized) == run(pdb, plan_of(pdb, sql))
