"""Scalar function library tests."""

from __future__ import annotations

import datetime

import pytest

from repro import BindError, Database, ExecutionError


@pytest.fixture
def db1(db: Database) -> Database:
    return db


def val(db, expr):
    return db.execute(f"SELECT {expr}").scalar()


# -- dates ----------------------------------------------------------------


def test_year_month_day(db1):
    assert val(db1, "YEAR(DATE '2023-11-28')") == 2023
    assert val(db1, "MONTH(DATE '2023-11-28')") == 11
    assert val(db1, "DAY(DATE '2023-11-28')") == 28


def test_quarter(db1):
    assert val(db1, "QUARTER(DATE '2023-02-01')") == 1
    assert val(db1, "QUARTER(DATE '2023-11-01')") == 4


def test_dayofweek_iso(db1):
    assert val(db1, "DAYOFWEEK(DATE '2024-01-01')") == 1  # a Monday
    assert val(db1, "DAYOFWEEK(DATE '2024-01-07')") == 7  # a Sunday


def test_dayofyear(db1):
    assert val(db1, "DAYOFYEAR(DATE '2024-02-01')") == 32


def test_date_trunc(db1):
    assert val(db1, "DATE_TRUNC_MONTH(DATE '2024-02-29')") == datetime.date(2024, 2, 1)
    assert val(db1, "DATE_TRUNC_YEAR(DATE '2024-02-29')") == datetime.date(2024, 1, 1)


def test_date_from_parts_add_diff(db1):
    assert val(db1, "DATE_FROM_PARTS(2024, 2, 29)") == datetime.date(2024, 2, 29)
    assert val(db1, "DATE_ADD(DATE '2024-01-01', 60)") == datetime.date(2024, 3, 1)
    assert val(db1, "DATE_DIFF(DATE '2024-03-01', DATE '2024-01-01')") == 60


def test_extract_sugar(db1):
    assert val(db1, "EXTRACT(YEAR FROM DATE '2020-05-01')") == 2020
    assert val(db1, "EXTRACT(MONTH FROM DATE '2020-05-01')") == 5


def test_year_of_non_date_raises(db1):
    with pytest.raises(ExecutionError):
        val(db1, "YEAR(42)")


# -- numerics ----------------------------------------------------------------


def test_abs_sign(db1):
    assert val(db1, "ABS(-7)") == 7
    assert val(db1, "SIGN(-7)") == -1
    assert val(db1, "SIGN(0)") == 0


def test_floor_ceil(db1):
    assert val(db1, "FLOOR(1.7)") == 1
    assert val(db1, "CEIL(1.2)") == 2
    assert val(db1, "FLOOR(-1.2)") == -2
    assert val(db1, "CEILING(-1.7)") == -1


def test_round(db1):
    assert val(db1, "ROUND(2.567, 2)") == pytest.approx(2.57)
    assert val(db1, "ROUND(2.5)") == 2.0  # banker's rounding, like Python


def test_sqrt_power(db1):
    assert val(db1, "SQRT(16)") == 4.0
    assert val(db1, "POWER(2, 10)") == 1024.0


def test_mod(db1):
    assert val(db1, "MOD(7, 3)") == 1


def test_mod_by_zero_raises(db1):
    with pytest.raises(ExecutionError):
        val(db1, "MOD(7, 0)")


def test_safe_divide(db1):
    assert val(db1, "SAFE_DIVIDE(10, 4)") == 2.5
    assert val(db1, "SAFE_DIVIDE(10, 0)") is None


def test_ln_exp_log10(db1):
    assert val(db1, "LN(EXP(1.0))") == pytest.approx(1.0)
    assert val(db1, "LOG10(1000)") == pytest.approx(3.0)


def test_trunc(db1):
    assert val(db1, "TRUNC(1.9)") == 1
    assert val(db1, "TRUNC(-1.9)") == -1


# -- strings ----------------------------------------------------------------


def test_upper_lower_length(db1):
    assert val(db1, "UPPER('abc')") == "ABC"
    assert val(db1, "LOWER('ABC')") == "abc"
    assert val(db1, "LENGTH('hello')") == 5


def test_trim_variants(db1):
    assert val(db1, "TRIM('  x  ')") == "x"
    assert val(db1, "LTRIM('  x')") == "x"
    assert val(db1, "RTRIM('x  ')") == "x"


def test_substring(db1):
    assert val(db1, "SUBSTRING('hello', 2, 3)") == "ell"
    assert val(db1, "SUBSTR('hello', 3)") == "llo"


def test_replace_reverse(db1):
    assert val(db1, "REPLACE('banana', 'na', 'NA')") == "baNANA"
    assert val(db1, "REVERSE('abc')") == "cba"


def test_concat_function(db1):
    assert val(db1, "CONCAT('a', 'b', 'c')") == "abc"
    assert val(db1, "CONCAT('n=', 1)") == "n=1"


def test_strpos(db1):
    assert val(db1, "STRPOS('hello', 'll')") == 3
    assert val(db1, "STRPOS('hello', 'zz')") == 0


def test_left_right(db1):
    assert val(db1, "LEFT('hello', 2)") == "he"
    assert val(db1, "RIGHT('hello', 2)") == "lo"


def test_starts_ends_with(db1):
    assert val(db1, "STARTS_WITH('hello', 'he')") is True
    assert val(db1, "ENDS_WITH('hello', 'lo')") is True
    assert val(db1, "ENDS_WITH('hello', 'he')") is False


# -- conditionals -----------------------------------------------------------


def test_coalesce(db1):
    assert val(db1, "COALESCE(NULL, NULL, 3, 4)") == 3
    assert val(db1, "COALESCE(NULL, NULL)") is None


def test_ifnull_nullif(db1):
    assert val(db1, "IFNULL(NULL, 9)") == 9
    assert val(db1, "IFNULL(1, 9)") == 1
    assert val(db1, "NULLIF(5, 5)") is None
    assert val(db1, "NULLIF(5, 6)") == 5


def test_if(db1):
    assert val(db1, "IF(1 < 2, 'yes', 'no')") == "yes"
    assert val(db1, "IF(NULL, 'yes', 'no')") == "no"


def test_greatest_least(db1):
    assert val(db1, "GREATEST(3, 9, 1)") == 9
    assert val(db1, "LEAST(3, 9, 1)") == 1
    assert val(db1, "GREATEST(3, NULL)") is None


# -- null propagation and errors ------------------------------------------------


def test_functions_propagate_null(db1):
    assert val(db1, "UPPER(NULL)") is None
    assert val(db1, "ABS(NULL)") is None
    assert val(db1, "YEAR(NULL)") is None


def test_unknown_function_raises(db1):
    with pytest.raises(BindError):
        val(db1, "FROBNICATE(1)")


def test_wrong_arity_raises(db1):
    with pytest.raises(BindError):
        val(db1, "YEAR(DATE '2024-01-01', 2)")
    with pytest.raises(BindError):
        val(db1, "SUBSTRING('x')")
