"""Catalog and storage: DDL, DML, schema enforcement, coercion."""

from __future__ import annotations

import datetime

import pytest

from repro import CatalogError, Database, ExecutionError
from repro.catalog import Catalog, Column, TableSchema
from repro.storage.table import MemoryTable
from repro.types import DATE, INTEGER, VARCHAR


def test_create_and_insert_and_count(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    assert db.execute("INSERT INTO t VALUES (1), (2)").rowcount == 2
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 2


def test_create_duplicate_table_raises(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    with pytest.raises(CatalogError):
        db.execute("CREATE TABLE t (a INTEGER)")


def test_create_if_not_exists(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("CREATE TABLE IF NOT EXISTS t (a INTEGER)")  # no error


def test_create_or_replace_table(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    db.execute("CREATE OR REPLACE TABLE t (a INTEGER, b INTEGER)")
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0


def test_drop_table(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("DROP TABLE t")
    with pytest.raises(CatalogError):
        db.execute("SELECT 1 FROM t")


def test_drop_missing_table_raises_unless_if_exists(db):
    with pytest.raises(CatalogError):
        db.execute("DROP TABLE t")
    db.execute("DROP TABLE IF EXISTS t")  # fine


def test_drop_wrong_kind_raises(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    with pytest.raises(CatalogError):
        db.execute("DROP VIEW t")


def test_view_validated_at_creation(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    from repro import BindError

    with pytest.raises(BindError):
        db.execute("CREATE VIEW v AS SELECT nope FROM t")


def test_view_column_count_mismatch(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    from repro import BindError

    with pytest.raises(BindError):
        db.execute("CREATE VIEW v (x, y) AS SELECT a FROM t")


def test_create_or_replace_view(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (5)")
    db.execute("CREATE VIEW v AS SELECT a FROM t")
    db.execute("CREATE OR REPLACE VIEW v AS SELECT a * 2 AS a2 FROM t")
    assert db.execute("SELECT a2 FROM v").scalar() == 10


def test_insert_column_subset_pads_null(db):
    db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
    db.execute("INSERT INTO t (b) VALUES ('only-b')")
    assert db.execute("SELECT a, b FROM t").rows == [(None, "only-b")]


def test_insert_arity_mismatch_raises(db):
    db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
    with pytest.raises(CatalogError):
        db.execute("INSERT INTO t VALUES (1)")


def test_insert_select(db):
    db.execute("CREATE TABLE src (a INTEGER)")
    db.execute("CREATE TABLE dst (a INTEGER)")
    db.execute("INSERT INTO src VALUES (1), (2), (3)")
    assert db.execute("INSERT INTO dst SELECT a * 10 FROM src").rowcount == 3
    assert db.execute("SELECT SUM(a) FROM dst").scalar() == 60


def test_insert_into_view_rejected(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("CREATE VIEW v AS SELECT a FROM t")
    with pytest.raises(CatalogError):
        db.execute("INSERT INTO v VALUES (1)")


def test_insert_coerces_types(db):
    db.execute("CREATE TABLE t (d DATE, f DOUBLE)")
    db.execute("INSERT INTO t VALUES ('2024-01-15', 3)")
    row = db.execute("SELECT d, f FROM t").rows[0]
    assert row == (datetime.date(2024, 1, 15), 3.0)
    assert isinstance(row[1], float)


def test_insert_bad_type_raises(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    with pytest.raises(ExecutionError):
        db.execute("INSERT INTO t VALUES ('not a number')")


def test_insert_bad_date_raises(db):
    db.execute("CREATE TABLE t (d DATE)")
    with pytest.raises(ExecutionError):
        db.execute("INSERT INTO t VALUES ('yesterday')")


def test_case_insensitive_names(db):
    db.execute("CREATE TABLE MixedCase (CamelCol INTEGER)")
    db.execute("INSERT INTO mixedcase VALUES (1)")
    assert db.execute("SELECT camelcol FROM MIXEDCASE").scalar() == 1


def test_duplicate_column_in_schema_raises():
    with pytest.raises(CatalogError):
        TableSchema([Column("a", INTEGER), Column("A", VARCHAR)])


def test_schema_lookup():
    schema = TableSchema([Column("a", INTEGER), Column("d", DATE)])
    assert schema.index_of("D") == 1
    assert schema.find("z") is None
    with pytest.raises(CatalogError):
        schema.index_of("z")


def test_memory_table_insert_partial_duplicate_column():
    table = MemoryTable(TableSchema([Column("a", INTEGER), Column("b", INTEGER)]))
    with pytest.raises(CatalogError):
        table.insert_partial(["a", "a"], [1, 2])


def test_memory_table_truncate():
    table = MemoryTable(TableSchema([Column("a", INTEGER)]))
    table.insert([1])
    table.truncate()
    assert len(table) == 0


def test_catalog_names_sorted():
    catalog = Catalog()
    catalog.create_table("zeta", TableSchema([Column("a", INTEGER)]))
    catalog.create_table("Alpha", TableSchema([Column("a", INTEGER)]))
    assert catalog.names() == ["Alpha", "zeta"]


def test_table_names_api(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("CREATE VIEW v AS SELECT a FROM t")
    assert db.table_names() == ["t", "v"]
