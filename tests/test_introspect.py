"""The repro_* system tables: fingerprinting, statistics, plan flips.

Covers the introspection subsystem end to end:

* statement fingerprinting — literals and IN-list shapes normalize away,
  structure does not;
* the virtual catalog namespace — system tables resolve and bind but are
  invisible to ``names()`` and protected from redefinition and DROP;
* SystemScan — planning, EXPLAIN, and snapshot-at-scan-start semantics;
* statistics accounting — calls/durations/rows/errors per fingerprint,
  introspection exclusion, ``reset_stats``;
* plan-flip detection — a strategy change for a repeated fingerprint
  produces exactly one ``repro_plan_flips`` row, one ``plan_flips_total``
  increment, and one ``plan_flip`` event;
* the acceptance query — a measure defined over ``repro_stat_statements``
  queried with ``AGGREGATE``.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.errors import CatalogError, SqlError
from repro.introspect import (
    SYSTEM_TABLE_NAMES,
    fingerprint_statement,
    normalize_statement,
    plan_hash,
    plan_shape,
)
from repro.sql.parser import parse_statement


def tele_db(**kwargs) -> Database:
    db = Database(telemetry=True, **kwargs)
    db.execute("CREATE TABLE t (k INTEGER, g VARCHAR, v INTEGER)")
    db.execute(
        "INSERT INTO t VALUES (1, 'x', 10), (2, 'y', 20), (3, 'x', 30)"
    )
    return db


# -- fingerprinting -----------------------------------------------------------


def fp(sql: str) -> str:
    fingerprint, _ = fingerprint_statement(parse_statement(sql))
    return fingerprint


def test_literals_normalize_away():
    assert fp("SELECT * FROM t WHERE v > 5") == fp(
        "SELECT * FROM t WHERE v > 99"
    )
    assert fp("SELECT * FROM t WHERE g = 'x'") == fp(
        "SELECT * FROM t WHERE g = 'something else'"
    )


def test_in_lists_collapse_regardless_of_length():
    assert fp("SELECT * FROM t WHERE k IN (1)") == fp(
        "SELECT * FROM t WHERE k IN (1, 2, 3, 4, 5)"
    )


def test_whitespace_and_keyword_case_normalize_away():
    assert fp("select  *\nfrom t  where v > 5") == fp(
        "SELECT * FROM t WHERE v > 5"
    )


def test_structure_still_distinguishes():
    assert fp("SELECT k FROM t") != fp("SELECT v FROM t")
    assert fp("SELECT k FROM t WHERE v > 1") != fp("SELECT k FROM t")
    assert fp("SELECT k FROM t GROUP BY k") != fp("SELECT k FROM t")


def test_normalized_text_shows_parameter_markers():
    text = normalize_statement(
        parse_statement("SELECT * FROM t WHERE v > 5 AND k IN (1, 2)")
    )
    assert "5" not in text and "2" not in text
    assert "?" in text


def test_plan_hash_depends_on_strategy_and_shape():
    assert plan_hash("interpreter", "Scan(t)") != plan_hash(
        "summary", "Scan(t)"
    )
    assert plan_hash("interpreter", "Scan(t)") != plan_hash(
        "interpreter", "Scan(u)"
    )
    assert plan_hash("interpreter", "Scan(t)") == plan_hash(
        "interpreter", "Scan(t)"
    )


# -- the virtual namespace ----------------------------------------------------


def test_system_tables_resolve_but_stay_out_of_names(db):
    assert db.catalog.names() == []
    for name in SYSTEM_TABLE_NAMES:
        assert name not in db.catalog
        obj = db.catalog.resolve(name)
        assert obj.kind == "SYSTEM TABLE"
        assert db.catalog.is_system(name)


def test_reserved_names_cannot_be_redefined(db):
    with pytest.raises(CatalogError, match="system table"):
        db.execute("CREATE TABLE repro_metrics (a INTEGER)")
    with pytest.raises(CatalogError, match="system table"):
        db.execute("CREATE VIEW repro_events AS SELECT 1 AS x")
    with pytest.raises(CatalogError, match="cannot be dropped"):
        db.execute("DROP TABLE repro_metrics")


def test_materialized_view_over_system_table_rejected(db):
    db.execute("CREATE TABLE t (k INTEGER)")
    with pytest.raises(CatalogError, match="volatile"):
        db.execute(
            "CREATE MATERIALIZED VIEW mv AS "
            "SELECT metric, SUM(value) AS s FROM repro_metrics "
            "GROUP BY metric"
        )


def test_describe_system_table(db):
    description = db.describe("repro_stat_statements")
    assert description["kind"] == "system table"
    column_names = [c["name"] for c in description["columns"]]
    assert "fingerprint" in column_names
    assert "total_wall_ms" in column_names


def test_explain_shows_system_scan(db):
    lines = [
        line
        for (line,) in db.execute(
            "EXPLAIN SELECT metric FROM repro_metrics WHERE value > 1"
        ).rows
    ]
    assert any("SystemScan(repro_metrics)" in line for line in lines)
    assert not any(
        "Scan(repro_metrics)" in line.replace("SystemScan", "")
        for line in lines
    )


# -- querying the tables ------------------------------------------------------


def test_repro_tables_lists_catalog_and_system_objects(db):
    db.execute("CREATE TABLE t (k INTEGER)")
    db.execute("CREATE VIEW w AS SELECT k FROM t")
    rows = db.execute("SELECT name, kind FROM repro_tables").rows
    kinds = dict(rows)
    assert kinds["t"] == "table"
    assert kinds["w"] == "view"
    for name in SYSTEM_TABLE_NAMES:
        assert kinds[name] == "system table"


def test_telemetry_off_tables_are_empty_not_errors(db):
    assert db.execute("SELECT * FROM repro_stat_statements").rows == []
    assert db.execute("SELECT * FROM repro_metrics").rows == []
    assert db.execute("SELECT * FROM repro_plan_flips").rows == []
    assert db.stat_statements() == []
    assert db.plan_flips() == []


def test_stat_statements_accumulates_per_fingerprint():
    db = tele_db()
    db.execute("SELECT * FROM t WHERE v > 5")
    db.execute("SELECT * FROM t WHERE v > 25")
    rows = db.execute(
        "SELECT query, calls, rows_returned FROM repro_stat_statements "
        "WHERE calls > 1"
    ).rows
    assert rows == [("SELECT * FROM t WHERE (v > ?)", 2, 4)]


def test_errors_attributed_to_fingerprint():
    db = tele_db()
    for _ in range(2):
        with pytest.raises(SqlError):
            db.execute("SELECT nosuch FROM t")
    entries = [e for e in db.stat_statements() if e["errors"]]
    assert len(entries) == 1
    assert entries[0]["errors"] == 2
    assert entries[0]["calls"] == 0


def test_queries_never_observe_themselves():
    db = tele_db()
    db.execute("SELECT * FROM t")
    first = db.execute("SELECT COUNT(*) FROM repro_stat_statements").scalar()
    second = db.execute("SELECT COUNT(*) FROM repro_stat_statements").scalar()
    # Introspection reads are excluded from the statistics, so the count
    # is stable no matter how often you look.
    assert first == second
    assert db.telemetry.introspection_queries_total.total() == 2.0


def test_snapshot_is_consistent_within_one_query():
    db = tele_db()
    db.execute("SELECT * FROM t")
    # Both sides of the self-join read the same scan-start snapshot, so
    # the join never sees two different versions of the table.
    rows = db.execute(
        "SELECT a.fingerprint FROM repro_stat_statements AS a "
        "JOIN repro_stat_statements AS b USING (fingerprint) "
        "WHERE a.calls <> b.calls"
    ).rows
    assert rows == []


def test_joining_system_table_with_user_table_counts_as_user_query():
    db = tele_db()
    before = db.telemetry.queries_total.total()
    db.execute(
        "SELECT t.k FROM t JOIN repro_tables AS s ON s.name = 'missing'"
    )
    assert db.telemetry.queries_total.total() == before + 1


def test_reset_stats_clears_rows_but_not_metrics():
    db = tele_db()
    db.execute("SELECT * FROM t")
    queries_before = db.telemetry.queries_total.total()
    assert db.stat_statements()
    db.reset_stats()
    assert db.stat_statements() == []
    assert db.plan_flips() == []
    assert db.telemetry.queries_total.total() == queries_before


def test_repro_matviews_reflects_hits_and_staleness():
    db = flip_db()
    db.execute(FLIP_QUERY)  # summary hit
    rows = db.execute(
        "SELECT name, source, stale, hits FROM repro_matviews"
    ).rows
    assert rows == [("by_prod", "sales", False, 1)]
    db.execute("INSERT INTO sales VALUES ('c', 9)")
    # Whatever maintenance policy applied (invalidation or incremental
    # merge), the table mirrors the catalog object's live state.
    view = db.catalog.resolve("by_prod")
    rows = db.execute(
        "SELECT name, stale, row_count FROM repro_matviews"
    ).rows
    assert rows == [("by_prod", view.stale, len(view.table))]


# -- plan-flip detection ------------------------------------------------------


def flip_db() -> Database:
    """A database where the same query can execute under two strategies."""
    db = Database(telemetry=True)
    db.execute("CREATE TABLE sales (prod VARCHAR, amount INTEGER)")
    db.execute(
        "INSERT INTO sales VALUES ('a', 1), ('a', 2), ('b', 3), ('b', 4)"
    )
    db.execute(
        "CREATE MATERIALIZED VIEW by_prod AS "
        "SELECT prod, SUM(amount) AS s FROM sales GROUP BY prod"
    )
    return db


FLIP_QUERY = "SELECT prod, SUM(amount) AS s FROM sales GROUP BY prod"


def test_strategy_change_produces_exactly_one_flip():
    db = flip_db()
    db.summaries_enabled = False
    db.execute(FLIP_QUERY)
    db.summaries_enabled = True
    db.execute(FLIP_QUERY)

    flips = db.plan_flips()
    assert len(flips) == 1
    (flip,) = flips
    assert flip["old_strategy"] == "interpreter"
    assert flip["new_strategy"] == "summary"
    assert flip["old_plan_hash"] != flip["new_plan_hash"]
    assert db.telemetry.plan_flips_total.total() == 1.0
    assert [e for e in db.events() if e["event"] == "plan_flip"]

    rows = db.execute(
        "SELECT fingerprint, old_strategy, new_strategy FROM repro_plan_flips"
    ).rows
    assert len(rows) == 1
    assert rows[0][1:] == ("interpreter", "summary")


def test_steady_plan_never_flips():
    db = flip_db()
    for _ in range(5):
        db.execute(FLIP_QUERY)
    assert db.plan_flips() == []
    assert db.telemetry.plan_flips_total.total() == 0.0


def test_ddl_rerun_does_not_flip_or_clear_hash():
    db = flip_db()
    db.execute(FLIP_QUERY)
    # Statements without a bound plan (DDL/DML) observe with no plan
    # hash; they can never flip and never overwrite a query's hash.
    db.execute("INSERT INTO sales VALUES ('c', 5)")
    db.execute("INSERT INTO sales VALUES ('d', 6)")
    db.execute(FLIP_QUERY)
    assert db.plan_flips() == []


def test_explain_shape_matches_plan_shape_helper():
    db = tele_db()
    db.execute("SELECT g, SUM(v) FROM t GROUP BY g")
    entry = next(
        e
        for e in db.stat_statements()
        if e["query"].startswith("SELECT g, SUM")
    )
    assert entry["last_plan_hash"] is not None
    assert entry["last_strategy"] == "interpreter"
    # The hash is reproducible from the components the helper exposes.
    shape = plan_shape(db._last_plan) if db._last_plan else None
    # _last_plan belongs to the most recent query; re-run to repopulate.
    db.execute("SELECT g, SUM(v) FROM t GROUP BY g")
    shape = plan_shape(db._last_plan)
    assert plan_hash("interpreter", shape) == entry["last_plan_hash"]


# -- the acceptance query: measures over system tables -------------------------


def test_measure_over_stat_statements():
    db = tele_db()
    db.execute("SELECT * FROM t WHERE v > 5")
    db.execute("SELECT * FROM t WHERE v > 25")
    db.execute("SELECT g, COUNT(*) FROM t GROUP BY g")
    db.execute(
        "CREATE VIEW stats_view AS "
        "SELECT fingerprint, calls, SUM(total_wall_ms) AS MEASURE total_ms "
        "FROM repro_stat_statements"
    )
    rows = db.execute(
        "SELECT fingerprint, AGGREGATE(total_ms) FROM stats_view "
        "GROUP BY fingerprint"
    ).rows
    expected = {
        e["fingerprint"]: e["total_wall_ms"] for e in db.stat_statements()
    }
    assert len(rows) == len(expected)
    for fingerprint, total_ms in rows:
        assert total_ms == pytest.approx(expected[fingerprint])
