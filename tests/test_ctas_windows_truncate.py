"""CREATE TABLE AS SELECT, TRUNCATE, and named WINDOW clauses."""

from __future__ import annotations

import pytest

from repro import BindError, CatalogError, Database


@pytest.fixture
def t(db: Database) -> Database:
    db.execute("CREATE TABLE t (g VARCHAR, v INTEGER)")
    db.execute("INSERT INTO t VALUES ('a', 1), ('a', 5), ('b', 2)")
    return db


def test_ctas_creates_and_fills(t):
    result = t.execute("CREATE TABLE s AS SELECT g, SUM(v) AS total FROM t GROUP BY g")
    assert result.rowcount == 2
    assert t.execute("SELECT total FROM s WHERE g = 'a'").scalar() == 6


def test_ctas_preserves_types(t):
    t.execute("CREATE TABLE s AS SELECT g, v * 1.5 AS scaled FROM t")
    # the new table carries DOUBLE values
    assert t.execute("SELECT SUM(scaled) FROM s").scalar() == pytest.approx(12.0)


def test_ctas_duplicate_name_raises(t):
    with pytest.raises(CatalogError):
        t.execute("CREATE TABLE t AS SELECT 1 AS x")


def test_create_or_replace_table_as(t):
    t.execute("CREATE TABLE s AS SELECT 1 AS x")
    t.execute("CREATE OR REPLACE TABLE s AS SELECT 2 AS x")
    assert t.execute("SELECT x FROM s").scalar() == 2


def test_ctas_from_measure_query(t):
    t.execute("CREATE VIEW m AS SELECT g, SUM(v) AS MEASURE total FROM t")
    t.execute(
        "CREATE TABLE snap AS SELECT g, AGGREGATE(total) AS total FROM m GROUP BY g"
    )
    assert t.execute("SELECT SUM(total) FROM snap").scalar() == 8


def test_ctas_round_trip():
    from repro.sql import parse_statement, to_sql

    sql = "CREATE OR REPLACE TABLE s AS SELECT a FROM t"
    printed = to_sql(parse_statement(sql))
    assert to_sql(parse_statement(printed)) == printed


def test_truncate(t):
    assert t.execute("TRUNCATE TABLE t").rowcount == 3
    assert t.execute("SELECT COUNT(*) FROM t").scalar() == 0
    # schema survives
    t.execute("INSERT INTO t VALUES ('z', 9)")
    assert t.execute("SELECT COUNT(*) FROM t").scalar() == 1


def test_truncate_without_table_keyword(t):
    assert t.execute("TRUNCATE t").rowcount == 3


def test_truncate_view_rejected(t):
    t.execute("CREATE VIEW v AS SELECT g FROM t")
    with pytest.raises(CatalogError):
        t.execute("TRUNCATE TABLE v")


def test_named_window_shared_by_two_calls(t):
    rows = t.execute(
        """SELECT g, v, ROW_NUMBER() OVER w AS rn, SUM(v) OVER w AS running
           FROM t WINDOW w AS (PARTITION BY g ORDER BY v)
           ORDER BY g, v"""
    ).rows
    assert rows == [("a", 1, 1, 1), ("a", 5, 2, 6), ("b", 2, 1, 2)]


def test_multiple_named_windows(t):
    rows = t.execute(
        """SELECT v, ROW_NUMBER() OVER a AS ra, ROW_NUMBER() OVER d AS rd
           FROM t
           WINDOW a AS (ORDER BY v), d AS (ORDER BY v DESC)
           ORDER BY v"""
    ).rows
    assert rows == [(1, 1, 3), (2, 2, 2), (5, 3, 1)]


def test_named_window_in_qualify(t):
    rows = t.execute(
        """SELECT g, v FROM t
           QUALIFY ROW_NUMBER() OVER w = 1
           WINDOW w AS (PARTITION BY g ORDER BY v DESC)
           ORDER BY g"""
    ).rows
    assert rows == [("a", 5), ("b", 2)]


def test_unknown_window_name_raises(t):
    with pytest.raises(BindError, match="nope"):
        t.execute("SELECT ROW_NUMBER() OVER nope FROM t")


def test_named_window_round_trip():
    from repro.sql import parse_statement, to_sql

    sql = "SELECT SUM(v) OVER w FROM t WINDOW w AS (PARTITION BY g)"
    printed = to_sql(parse_statement(sql))
    assert "OVER w" in printed and "WINDOW w AS" in printed
    assert to_sql(parse_statement(printed)) == printed
