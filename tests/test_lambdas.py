"""The section-4 lambda exposition renderer (paper Listing 11)."""

from __future__ import annotations

import pytest

from repro import Database, UnsupportedError
from repro.core.lambdas import explain_lambda_semantics

LISTING10 = """
SELECT prodName, YEAR(orderDate) AS orderYear,
       sumRevenue / sumRevenue AT (SET orderYear = CURRENT orderYear - 1) AS ratio
FROM (SELECT *, SUM(revenue) AS MEASURE sumRevenue,
             YEAR(orderDate) AS orderYear FROM Orders)
GROUP BY prodName, YEAR(orderDate)
"""


def test_listing11_structure(paper_db):
    text = explain_lambda_semantics(paper_db, LISTING10)
    # The three parts of paper Listing 11:
    assert "CREATE TYPE OrdersRow AS ROW" in text
    assert "prodName VARCHAR" in text and "orderDate DATE" in text
    assert (
        "CREATE FUNCTION computeSumRevenue(rowPredicate FUNCTION(OrdersRow)"
        in text
    )
    assert "APPLY(rowPredicate, o)" in text
    # Two uses of the measure -> two lambda calls, one with the year shift.
    assert text.count("computeSumRevenue(r ->") == 2
    assert "YEAR(t1.orderDate) - 1" in text


def test_lambda_predicates_reference_source_and_outer(paper_db):
    paper_db.execute(
        "CREATE VIEW eo AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders"
    )
    text = explain_lambda_semantics(
        paper_db,
        "SELECT prodName, AGGREGATE(r) FROM eo GROUP BY prodName",
    )
    assert "r.prodName IS NOT DISTINCT FROM eo.prodName" in text


def test_lambda_includes_baked_where(paper_db):
    paper_db.execute(
        """CREATE VIEW alice AS
           SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders
           WHERE custName = 'Alice'"""
    )
    text = explain_lambda_semantics(
        paper_db, "SELECT prodName, AGGREGATE(r) FROM alice GROUP BY prodName"
    )
    assert "o.custName = 'Alice'" in text  # baked into the auxiliary function


def test_lambda_shared_function_for_repeated_measure(paper_db):
    paper_db.execute(
        "CREATE VIEW eo2 AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders"
    )
    text = explain_lambda_semantics(
        paper_db,
        """SELECT prodName, AGGREGATE(r), r AT (ALL) FROM eo2
           GROUP BY prodName""",
    )
    assert text.count("CREATE FUNCTION computeR(") == 1
    assert text.count("computeR(r ->") == 2


def test_lambda_all_context_is_true(paper_db):
    paper_db.execute(
        "CREATE VIEW eo3 AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders"
    )
    text = explain_lambda_semantics(
        paper_db, "SELECT prodName, r AT (ALL) FROM eo3 GROUP BY prodName"
    )
    assert "computeR(r -> TRUE)" in text


def test_query_without_measures_rejected(paper_db):
    with pytest.raises(UnsupportedError):
        explain_lambda_semantics(paper_db, "SELECT COUNT(*) FROM Orders")


def test_non_query_rejected(paper_db):
    with pytest.raises(UnsupportedError):
        explain_lambda_semantics(paper_db, "CREATE TABLE z (a INTEGER)")
