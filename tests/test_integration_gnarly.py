"""Integration tests for awkward query shapes: deep nesting, CTE reuse,
mixed features, and measure/engine interactions that cross module borders."""

from __future__ import annotations

import pytest

from repro import Database


def test_cte_referenced_twice(paper_db):
    value = paper_db.execute(
        """WITH totals AS (
             SELECT prodName, SUM(revenue) AS r FROM Orders GROUP BY prodName)
           SELECT (SELECT MAX(r) FROM totals) - (SELECT MIN(r) FROM totals)"""
    ).scalar()
    assert value == 17 - 3


def test_nested_with_shadowing(paper_db):
    value = paper_db.execute(
        """WITH t AS (SELECT 1 AS x)
           SELECT * FROM (WITH t AS (SELECT 2 AS x) SELECT x FROM t)"""
    ).scalar()
    assert value == 2


def test_five_level_nested_subqueries(db):
    db.execute("CREATE TABLE n (x INTEGER)")
    db.execute("INSERT INTO n VALUES (1), (2), (3)")
    value = db.execute(
        """SELECT SUM(x) FROM (SELECT x FROM (SELECT x FROM
           (SELECT x FROM (SELECT x FROM n WHERE x > 0) WHERE x > 0)
           WHERE x > 0) WHERE x > 0)"""
    ).scalar()
    assert value == 6


def test_three_way_join_with_using_chain(paper_db):
    paper_db.execute("CREATE TABLE Regions (custName VARCHAR, region VARCHAR)")
    paper_db.execute(
        "INSERT INTO Regions VALUES ('Alice', 'north'), ('Bob', 'south'), ('Celia', 'north')"
    )
    rows = paper_db.execute(
        """SELECT region, SUM(revenue) AS r
           FROM Orders JOIN Customers USING (custName)
                       JOIN Regions USING (custName)
           GROUP BY region ORDER BY region"""
    ).rows
    assert rows == [("north", 16), ("south", 9)]


def test_union_of_aggregates_with_order(paper_db):
    rows = paper_db.execute(
        """SELECT 'revenue' AS metric, SUM(revenue) AS v FROM Orders
           UNION ALL
           SELECT 'cost', SUM(cost) FROM Orders
           ORDER BY v DESC"""
    ).rows
    assert rows == [("revenue", 25), ("cost", 12)]


def test_exists_with_measure_view(paper_db):
    paper_db.execute(
        "CREATE VIEW eo AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders"
    )
    rows = paper_db.execute(
        """SELECT custName FROM Customers AS c
           WHERE EXISTS (SELECT 1 FROM Orders AS o
                         WHERE o.custName = c.custName AND o.revenue > 5)
           ORDER BY custName"""
    ).rows
    assert rows == [("Alice",)]


def test_measure_view_with_order_and_limit(paper_db):
    """ORDER/LIMIT in the defining query shape the relation's rows but not
    the measure's source."""
    paper_db.execute(
        """CREATE VIEW topOrders AS
           SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders
           ORDER BY prodName LIMIT 2"""
    )
    result = paper_db.execute("SELECT prodName, r FROM topOrders GROUP BY prodName")
    # Only the first 2 rows of the relation survive, but r still sees all
    # of Orders for its context.
    assert len(result.rows) <= 2
    by_name = dict(result.rows)
    if "Happy" in by_name:
        assert by_name["Happy"] == 17


def test_case_over_measures(paper_db):
    paper_db.execute(
        "CREATE VIEW eo2 AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders"
    )
    rows = paper_db.execute(
        """SELECT prodName,
                  CASE WHEN AGGREGATE(r) > 10 THEN 'big' ELSE 'small' END AS size
           FROM eo2 GROUP BY prodName ORDER BY prodName"""
    ).rows
    assert rows == [("Acme", "small"), ("Happy", "big"), ("Whizz", "small")]


def test_measure_in_in_list(paper_db):
    paper_db.execute(
        "CREATE VIEW eo3 AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders"
    )
    rows = paper_db.execute(
        """SELECT prodName FROM eo3 GROUP BY prodName
           HAVING AGGREGATE(r) IN (5, 17) ORDER BY prodName"""
    ).rows
    assert rows == [("Acme",), ("Happy",)]


def test_grouping_label_with_measure_levels(paper_db):
    """Custom roll-up labels via GROUPING combined with measure values at
    each level (paper section 5.3's 'different formula per level' pattern)."""
    paper_db.execute(
        "CREATE VIEW eo4 AS SELECT prodName, custName, SUM(revenue) AS MEASURE r FROM Orders"
    )
    rows = paper_db.execute(
        """SELECT CASE WHEN GROUPING(prodName) = 1 THEN 'ALL PRODUCTS'
                       ELSE prodName END AS label,
                  AGGREGATE(r) AS revenue
           FROM eo4 GROUP BY ROLLUP(prodName)
           ORDER BY GROUPING(prodName), label"""
    ).rows
    assert rows == [
        ("Acme", 5),
        ("Happy", 17),
        ("Whizz", 3),
        ("ALL PRODUCTS", 25),
    ]


def test_window_over_measure_results(paper_db):
    paper_db.execute(
        "CREATE VIEW eo5 AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders"
    )
    rows = paper_db.execute(
        """SELECT prodName, AGGREGATE(r) AS rev,
                  RANK() OVER (ORDER BY AGGREGATE(r) DESC) AS rnk
           FROM eo5 GROUP BY prodName ORDER BY rnk"""
    ).rows
    assert rows == [("Happy", 17, 1), ("Acme", 5, 2), ("Whizz", 3, 3)]


def test_values_in_from_with_alias(db):
    rows = db.execute(
        """SELECT t.col1 * 2 FROM (VALUES (1), (2)) AS t ORDER BY 1"""
    ).rows
    assert rows == [(2,), (4,)]


def test_mixed_rollup_and_plain_keys_with_measure(paper_db):
    paper_db.execute(
        """CREATE VIEW eo6 AS
           SELECT prodName, custName, SUM(revenue) AS MEASURE r FROM Orders"""
    )
    rows = paper_db.execute(
        """SELECT custName, prodName, r FROM eo6
           GROUP BY custName, ROLLUP(prodName)
           ORDER BY custName, prodName NULLS LAST"""
    ).rows
    by_key = {(r[0], r[1]): r[2] for r in rows}
    # Rollup row per customer: prodName term suppressed, custName kept.
    assert by_key[("Alice", None)] == 13
    assert by_key[("Bob", None)] == 9
    assert by_key[("Alice", "Happy")] == 13


def test_insert_select_with_measures(paper_db):
    """Materializing measure results into a base table."""
    paper_db.execute(
        "CREATE VIEW eo7 AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders"
    )
    paper_db.execute("CREATE TABLE summary (prodName VARCHAR, r INTEGER)")
    count = paper_db.execute(
        "INSERT INTO summary SELECT prodName, AGGREGATE(r) FROM eo7 GROUP BY prodName"
    ).rowcount
    assert count == 3
    assert paper_db.execute("SELECT SUM(r) FROM summary").scalar() == 25


def test_update_from_measure_subquery(paper_db):
    paper_db.execute("CREATE TABLE targets (prodName VARCHAR, target INTEGER)")
    paper_db.execute(
        "INSERT INTO targets VALUES ('Happy', 0), ('Acme', 0), ('Whizz', 0)"
    )
    paper_db.execute(
        """UPDATE targets SET target =
             (SELECT SUM(revenue) FROM Orders
              WHERE Orders.prodName = targets.prodName) * 2"""
    )
    assert paper_db.execute(
        "SELECT target FROM targets WHERE prodName = 'Happy'"
    ).scalar() == 34


def test_long_conjunction_chain(db):
    db.execute("CREATE TABLE c (x INTEGER)")
    db.execute("INSERT INTO c VALUES (5)")
    conditions = " AND ".join(f"x <> {i}" for i in range(30) if i != 5)
    assert db.execute(f"SELECT COUNT(*) FROM c WHERE {conditions}").scalar() == 1


def test_wide_projection(db):
    items = ", ".join(f"{i} AS c{i}" for i in range(60))
    result = db.execute(f"SELECT {items}")
    assert len(result.columns) == 60
    assert result.rows[0][59] == 59
