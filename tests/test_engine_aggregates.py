"""Aggregate execution: GROUP BY, HAVING, DISTINCT/FILTER, empty groups."""

from __future__ import annotations

import pytest

from repro import BindError, Database


@pytest.fixture
def sales(db: Database) -> Database:
    db.execute("CREATE TABLE sales (region VARCHAR, product VARCHAR, amount INTEGER)")
    db.execute(
        """INSERT INTO sales VALUES
           ('north', 'a', 10), ('north', 'b', 20), ('north', 'a', 30),
           ('south', 'a', 5), ('south', 'b', NULL)"""
    )
    return db


def test_group_by_sum(sales):
    rows = sales.execute(
        "SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY region"
    ).rows
    assert rows == [("north", 60), ("south", 5)]


def test_group_by_multiple_keys(sales):
    rows = sales.execute(
        """SELECT region, product, COUNT(*) FROM sales
           GROUP BY region, product ORDER BY region, product"""
    ).rows
    assert rows == [
        ("north", "a", 2),
        ("north", "b", 1),
        ("south", "a", 1),
        ("south", "b", 1),
    ]


def test_count_star_vs_count_column(sales):
    row = sales.execute("SELECT COUNT(*), COUNT(amount) FROM sales").rows[0]
    assert row == (5, 4)  # NULL amount not counted by COUNT(amount)


def test_sum_ignores_nulls(sales):
    assert sales.execute("SELECT SUM(amount) FROM sales").scalar() == 65


def test_avg(sales):
    assert sales.execute("SELECT AVG(amount) FROM sales").scalar() == pytest.approx(65 / 4)


def test_min_max(sales):
    assert sales.execute("SELECT MIN(amount), MAX(amount) FROM sales").rows[0] == (5, 30)


def test_min_max_strings(sales):
    assert sales.execute("SELECT MIN(region), MAX(product) FROM sales").rows[0] == (
        "north",
        "b",
    )


def test_aggregates_over_empty_input(db):
    db.execute("CREATE TABLE empty (x INTEGER)")
    row = db.execute("SELECT COUNT(*), SUM(x), AVG(x), MIN(x) FROM empty").rows[0]
    assert row == (0, None, None, None)


def test_group_by_over_empty_input_returns_no_rows(db):
    db.execute("CREATE TABLE empty2 (x INTEGER)")
    assert db.execute("SELECT x, COUNT(*) FROM empty2 GROUP BY x").rows == []


def test_null_group_key_forms_group(sales):
    sales.execute("INSERT INTO sales VALUES (NULL, 'a', 1), (NULL, 'b', 2)")
    rows = sales.execute(
        "SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY region NULLS LAST"
    ).rows
    assert rows[-1] == (None, 3)


def test_distinct_aggregate(sales):
    sales.execute("INSERT INTO sales VALUES ('north', 'a', 10)")
    row = sales.execute(
        "SELECT COUNT(amount), COUNT(DISTINCT amount) FROM sales WHERE region = 'north'"
    ).rows[0]
    assert row == (4, 3)


def test_sum_distinct(sales):
    sales.execute("INSERT INTO sales VALUES ('north', 'a', 10)")
    assert (
        sales.execute(
            "SELECT SUM(DISTINCT amount) FROM sales WHERE region = 'north'"
        ).scalar()
        == 60
    )


def test_filter_clause(sales):
    row = sales.execute(
        """SELECT SUM(amount) FILTER (WHERE product = 'a'),
                  COUNT(*) FILTER (WHERE amount > 10)
           FROM sales"""
    ).rows[0]
    assert row == (45, 2)


def test_having(sales):
    rows = sales.execute(
        "SELECT region FROM sales GROUP BY region HAVING SUM(amount) > 10"
    ).rows
    assert rows == [("north",)]


def test_having_references_unselected_aggregate(sales):
    rows = sales.execute(
        "SELECT region, COUNT(*) FROM sales GROUP BY region HAVING MAX(amount) >= 30"
    ).rows
    assert rows == [("north", 3)]


def test_group_by_expression(sales):
    rows = sales.execute(
        """SELECT UPPER(region), COUNT(*) FROM sales
           GROUP BY UPPER(region) ORDER BY 1"""
    ).rows
    assert rows == [("NORTH", 3), ("SOUTH", 2)]


def test_select_must_match_group_expression(sales):
    with pytest.raises(BindError):
        sales.execute("SELECT product FROM sales GROUP BY region")


def test_expression_over_group_key_allowed(sales):
    rows = sales.execute(
        "SELECT region || '!' FROM sales GROUP BY region ORDER BY 1"
    ).rows
    assert rows == [("north!",), ("south!",)]


def test_group_by_ordinal(sales):
    rows = sales.execute(
        "SELECT region, COUNT(*) FROM sales GROUP BY 1 ORDER BY 1"
    ).rows
    assert [r[0] for r in rows] == ["north", "south"]


def test_group_by_alias(sales):
    rows = sales.execute(
        "SELECT UPPER(region) AS reg, COUNT(*) FROM sales GROUP BY reg ORDER BY reg"
    ).rows
    assert [r[0] for r in rows] == ["NORTH", "SOUTH"]


def test_aggregate_in_where_rejected(sales):
    with pytest.raises(BindError):
        sales.execute("SELECT region FROM sales WHERE SUM(amount) > 10 GROUP BY region")


def test_nested_aggregate_rejected(sales):
    with pytest.raises(BindError):
        sales.execute("SELECT SUM(COUNT(*)) FROM sales")


def test_aggregate_in_group_by_rejected(sales):
    with pytest.raises(BindError):
        sales.execute("SELECT 1 FROM sales GROUP BY SUM(amount)")


def test_stddev_variance(db):
    db.execute("CREATE TABLE nums (x DOUBLE)")
    db.execute("INSERT INTO nums VALUES (2.0), (4.0), (4.0), (4.0), (5.0), (5.0), (7.0), (9.0)")
    pop = db.execute("SELECT STDDEV_POP(x) FROM nums").scalar()
    assert pop == pytest.approx(2.0)
    samp = db.execute("SELECT VAR_SAMP(x) FROM nums").scalar()
    assert samp == pytest.approx(32 / 7)


def test_stddev_single_value_is_null(db):
    db.execute("CREATE TABLE one (x DOUBLE)")
    db.execute("INSERT INTO one VALUES (1.0)")
    assert db.execute("SELECT STDDEV(x) FROM one").scalar() is None
    assert db.execute("SELECT STDDEV_POP(x) FROM one").scalar() == 0.0


def test_string_agg(sales):
    value = sales.execute(
        "SELECT STRING_AGG(product) FROM sales WHERE region = 'north'"
    ).scalar()
    assert value == "a,b,a"


def test_bool_and_or(db):
    db.execute("CREATE TABLE flags (f BOOLEAN)")
    db.execute("INSERT INTO flags VALUES (TRUE), (FALSE), (NULL)")
    assert db.execute("SELECT BOOL_AND(f) FROM flags").scalar() is False
    assert db.execute("SELECT BOOL_OR(f) FROM flags").scalar() is True


def test_any_value(sales):
    value = sales.execute(
        "SELECT ANY_VALUE(product) FROM sales WHERE region = 'south'"
    ).scalar()
    assert value in ("a", "b")


def test_median(db):
    db.execute("CREATE TABLE m (x INTEGER)")
    db.execute("INSERT INTO m VALUES (1), (3), (2), (10)")
    assert db.execute("SELECT MEDIAN(x) FROM m").scalar() == 2.5


def test_countif(db):
    db.execute("CREATE TABLE c (x INTEGER)")
    db.execute("INSERT INTO c VALUES (1), (5), (NULL), (9)")
    assert db.execute("SELECT COUNTIF(x > 2) FROM c").scalar() == 2


def test_global_aggregate_with_where_matching_nothing(sales):
    row = sales.execute("SELECT COUNT(*), SUM(amount) FROM sales WHERE FALSE").rows[0]
    assert row == (0, None)


def test_aggregate_query_from_subquery(sales):
    value = sales.execute(
        """SELECT SUM(total) FROM
           (SELECT region, SUM(amount) AS total FROM sales GROUP BY region)"""
    ).scalar()
    assert value == 65
