"""Property tests for the telemetry subsystem's accounting invariants.

Three families:

* histogram internals — per-bucket counts always sum to the observation
  count, and the sum field tracks the total of observed values;
* whole-database accounting — across a randomized workload,
  ``queries_total`` equals the number of successful ``execute()`` calls
  and ``errors_total`` the number of failing ones;
* observation purity — a telemetry-enabled Database returns exactly the
  rows a plain one does (extends the ``test_differential_sqlite``
  pattern for an internal differential).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, SqlError
from repro.telemetry import MetricsRegistry

# -- histogram invariants -----------------------------------------------------

values_strategy = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=0,
    max_size=200,
)

buckets_strategy = st.lists(
    st.floats(min_value=0.001, max_value=1e5, allow_nan=False),
    min_size=1,
    max_size=12,
    unique=True,
)


@settings(max_examples=200, deadline=None)
@given(values_strategy, buckets_strategy)
def test_histogram_buckets_sum_to_count(values, buckets):
    reg = MetricsRegistry()
    hist = reg.histogram("h_ms", "H.", buckets=buckets)
    for value in values:
        hist.observe(value)
    counts = hist.bucket_counts()
    assert len(counts) == len(hist.boundaries) + 1
    assert sum(counts) == hist.count() == len(values)
    assert math.isclose(hist.sum_(), sum(values), rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=200, deadline=None)
@given(values_strategy, buckets_strategy)
def test_histogram_prometheus_cumulative_is_monotone(values, buckets):
    """The rendered cumulative buckets never decrease, and the +Inf bucket
    equals the count — for every labelset, derived from the same storage
    the non-cumulative invariant holds over."""
    reg = MetricsRegistry()
    hist = reg.histogram("h_ms", "H.", buckets=buckets)
    for value in values:
        hist.observe(value)
    cumulative = 0
    for bucket in hist.bucket_counts():
        assert bucket >= 0
        cumulative += bucket
    assert cumulative == hist.count()
    # The le= placement respects the boundaries: everything observed at or
    # under boundary[i] is inside cumulative bucket i.
    for i, boundary in enumerate(hist.boundaries):
        expected = sum(1 for v in values if v <= boundary)
        assert sum(hist.bucket_counts()[: i + 1]) == expected


# -- whole-database accounting ------------------------------------------------

statement_strategy = st.sampled_from(
    [
        "SELECT k, v FROM t",
        "SELECT g, COUNT(*) FROM t GROUP BY g",
        "SELECT SUM(v) FROM t WHERE k > 1",
        "SELECT DISTINCT g FROM t",
        "INSERT INTO t VALUES (9, 'x', 1, 2)",
        "UPDATE t SET v = v + 1 WHERE k = 0",
        "DELETE FROM t WHERE k = 4",
        "SELECT nope FROM t",          # bind error
        "SELECT FROM WHERE",           # parse error
    ]
)

workload_strategy = st.lists(statement_strategy, min_size=0, max_size=20)

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 4),
        st.sampled_from(["x", "y", "z"]),
        st.one_of(st.none(), st.integers(-20, 20)),
        st.integers(0, 9),
    ),
    min_size=0,
    max_size=10,
)


def make_db(rows, **kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table_from_rows(
        "t",
        [("k", "INTEGER"), ("g", "VARCHAR"), ("v", "INTEGER"), ("w", "INTEGER")],
        rows,
    )
    return db


@settings(max_examples=100, deadline=None)
@given(rows_strategy, workload_strategy)
def test_queries_total_counts_execute_calls(rows, workload):
    db = make_db(rows, telemetry=True)
    ok = failed = 0
    for sql in workload:
        try:
            db.execute(sql)
            ok += 1
        except SqlError:
            failed += 1
    tele = db.telemetry
    assert tele.queries_total.total() == ok
    assert tele.errors_total.total() == failed
    # Every completed statement observed exactly one duration.
    total_observed = sum(
        tele.query_duration_ms.count(**labels)
        for labels in tele.query_duration_ms.labelsets()
    )
    assert total_observed == ok
    # Every bucketed histogram series individually sums to its count.
    for labels in tele.query_duration_ms.labelsets():
        counts = tele.query_duration_ms.bucket_counts(**labels)
        assert sum(counts) == tele.query_duration_ms.count(**labels)


introspection_strategy = st.sampled_from(
    [
        "SELECT * FROM repro_stat_statements",
        "SELECT fingerprint, calls FROM repro_stat_statements WHERE calls > 0",
        "SELECT * FROM repro_metrics",
        "SELECT metric, value FROM repro_metrics WHERE value > 1",
        "SELECT * FROM repro_plan_flips",
        "SELECT name, kind FROM repro_tables",
        "SELECT COUNT(*) FROM repro_events",
    ]
)


@settings(max_examples=100, deadline=None)
@given(
    rows_strategy,
    st.lists(
        st.one_of(statement_strategy, introspection_strategy),
        min_size=0,
        max_size=20,
    ),
)
def test_introspection_reads_never_count_as_queries(rows, workload):
    """A query that scans only system tables is accounted under
    ``introspection_queries_total``; ``queries_total`` is reserved for
    user statements, so watching the database never perturbs the very
    statistics being watched."""
    db = make_db(rows, telemetry=True)
    user_ok = introspection_ok = failed = 0
    for sql in workload:
        is_introspection = "repro_" in sql
        try:
            db.execute(sql)
        except SqlError:
            failed += 1
        else:
            if is_introspection:
                introspection_ok += 1
            else:
                user_ok += 1
    tele = db.telemetry
    assert tele.queries_total.total() == user_ok
    assert tele.introspection_queries_total.total() == introspection_ok
    assert tele.errors_total.total() == failed
    # Introspection reads never acquire a fingerprint entry either: the
    # stats table only describes user statements.
    for entry in db.stat_statements():
        assert "repro_" not in entry["query"]


@settings(max_examples=100, deadline=None)
@given(rows_strategy, workload_strategy)
def test_stat_statements_consistent_with_metrics(rows, workload):
    """Differential: the per-fingerprint statistics and the cumulative
    metrics meter the same executions, so their aggregates must agree.

    Every successful statement is one ``calls`` in exactly one stats row
    and one ``queries_total`` increment; both feeds record the same
    duration sample; errors attributed to a fingerprint (bind/execution)
    are a subset of ``errors_total`` (parse errors have no statement to
    fingerprint)."""
    db = make_db(rows, telemetry=True)
    for sql in workload:
        try:
            db.execute(sql)
        except SqlError:
            pass
    metrics = db.metrics()
    entries = db.stat_statements()

    def counter_total(name: str) -> float:
        return sum(s["value"] for s in metrics[name]["series"])

    assert sum(e["calls"] for e in entries) == counter_total("queries_total")
    assert sum(e["errors"] for e in entries) <= counter_total("errors_total")

    stats_ms = sum(e["total_wall_ms"] for e in entries)
    histogram_ms = sum(
        s["sum"] for s in metrics["query_duration_ms"]["series"]
    )
    assert math.isclose(stats_ms, histogram_ms, rel_tol=1e-9, abs_tol=1e-9)

    # Row-returning queries feed rows_returned_total; DML rowcounts are
    # accounted only in the stats (strategy "none" entries).
    query_rows = sum(
        e["rows_returned"] for e in entries if e["last_strategy"] != "none"
    )
    assert query_rows == counter_total("rows_returned_total")

    for e in entries:
        if e["calls"]:
            assert math.isclose(
                e["mean_wall_ms"] * e["calls"],
                e["total_wall_ms"],
                rel_tol=1e-9,
                abs_tol=1e-9,
            )
            assert e["min_wall_ms"] - 1e-9 <= e["mean_wall_ms"]
            assert e["mean_wall_ms"] <= e["max_wall_ms"] + 1e-9
        else:
            # Error-only entries: seen, never successfully executed.
            assert e["errors"] > 0
            assert e["total_wall_ms"] == 0.0


@settings(max_examples=100, deadline=None)
@given(rows_strategy, workload_strategy)
def test_telemetry_on_off_identical_results(rows, workload):
    plain = make_db(rows)
    observed = make_db(rows, telemetry=True)
    for sql in workload:
        plain_rows = plain_error = None
        try:
            plain_rows = plain.execute(sql).rows
        except SqlError as exc:
            plain_error = type(exc).__name__
        observed_rows = observed_error = None
        try:
            observed_rows = observed.execute(sql).rows
        except SqlError as exc:
            observed_error = type(exc).__name__
        assert observed_rows == plain_rows
        assert observed_error == plain_error
