"""Property tests for the telemetry subsystem's accounting invariants.

Three families:

* histogram internals — per-bucket counts always sum to the observation
  count, and the sum field tracks the total of observed values;
* whole-database accounting — across a randomized workload,
  ``queries_total`` equals the number of successful ``execute()`` calls
  and ``errors_total`` the number of failing ones;
* observation purity — a telemetry-enabled Database returns exactly the
  rows a plain one does (extends the ``test_differential_sqlite``
  pattern for an internal differential).
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database, SqlError
from repro.telemetry import MetricsRegistry

# -- histogram invariants -----------------------------------------------------

values_strategy = st.lists(
    st.floats(
        min_value=0.0,
        max_value=1e6,
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=0,
    max_size=200,
)

buckets_strategy = st.lists(
    st.floats(min_value=0.001, max_value=1e5, allow_nan=False),
    min_size=1,
    max_size=12,
    unique=True,
)


@settings(max_examples=200, deadline=None)
@given(values_strategy, buckets_strategy)
def test_histogram_buckets_sum_to_count(values, buckets):
    reg = MetricsRegistry()
    hist = reg.histogram("h_ms", "H.", buckets=buckets)
    for value in values:
        hist.observe(value)
    counts = hist.bucket_counts()
    assert len(counts) == len(hist.boundaries) + 1
    assert sum(counts) == hist.count() == len(values)
    assert math.isclose(hist.sum_(), sum(values), rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=200, deadline=None)
@given(values_strategy, buckets_strategy)
def test_histogram_prometheus_cumulative_is_monotone(values, buckets):
    """The rendered cumulative buckets never decrease, and the +Inf bucket
    equals the count — for every labelset, derived from the same storage
    the non-cumulative invariant holds over."""
    reg = MetricsRegistry()
    hist = reg.histogram("h_ms", "H.", buckets=buckets)
    for value in values:
        hist.observe(value)
    cumulative = 0
    for bucket in hist.bucket_counts():
        assert bucket >= 0
        cumulative += bucket
    assert cumulative == hist.count()
    # The le= placement respects the boundaries: everything observed at or
    # under boundary[i] is inside cumulative bucket i.
    for i, boundary in enumerate(hist.boundaries):
        expected = sum(1 for v in values if v <= boundary)
        assert sum(hist.bucket_counts()[: i + 1]) == expected


# -- whole-database accounting ------------------------------------------------

statement_strategy = st.sampled_from(
    [
        "SELECT k, v FROM t",
        "SELECT g, COUNT(*) FROM t GROUP BY g",
        "SELECT SUM(v) FROM t WHERE k > 1",
        "SELECT DISTINCT g FROM t",
        "INSERT INTO t VALUES (9, 'x', 1, 2)",
        "UPDATE t SET v = v + 1 WHERE k = 0",
        "DELETE FROM t WHERE k = 4",
        "SELECT nope FROM t",          # bind error
        "SELECT FROM WHERE",           # parse error
    ]
)

workload_strategy = st.lists(statement_strategy, min_size=0, max_size=20)

rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 4),
        st.sampled_from(["x", "y", "z"]),
        st.one_of(st.none(), st.integers(-20, 20)),
        st.integers(0, 9),
    ),
    min_size=0,
    max_size=10,
)


def make_db(rows, **kwargs) -> Database:
    db = Database(**kwargs)
    db.create_table_from_rows(
        "t",
        [("k", "INTEGER"), ("g", "VARCHAR"), ("v", "INTEGER"), ("w", "INTEGER")],
        rows,
    )
    return db


@settings(max_examples=100, deadline=None)
@given(rows_strategy, workload_strategy)
def test_queries_total_counts_execute_calls(rows, workload):
    db = make_db(rows, telemetry=True)
    ok = failed = 0
    for sql in workload:
        try:
            db.execute(sql)
            ok += 1
        except SqlError:
            failed += 1
    tele = db.telemetry
    assert tele.queries_total.total() == ok
    assert tele.errors_total.total() == failed
    # Every completed statement observed exactly one duration.
    total_observed = sum(
        tele.query_duration_ms.count(**labels)
        for labels in tele.query_duration_ms.labelsets()
    )
    assert total_observed == ok
    # Every bucketed histogram series individually sums to its count.
    for labels in tele.query_duration_ms.labelsets():
        counts = tele.query_duration_ms.bucket_counts(**labels)
        assert sum(counts) == tele.query_duration_ms.count(**labels)


@settings(max_examples=100, deadline=None)
@given(rows_strategy, workload_strategy)
def test_telemetry_on_off_identical_results(rows, workload):
    plain = make_db(rows)
    observed = make_db(rows, telemetry=True)
    for sql in workload:
        plain_rows = plain_error = None
        try:
            plain_rows = plain.execute(sql).rows
        except SqlError as exc:
            plain_error = type(exc).__name__
        observed_rows = observed_error = None
        try:
            observed_rows = observed.execute(sql).rows
        except SqlError as exc:
            observed_error = type(exc).__name__
        assert observed_rows == plain_rows
        assert observed_error == plain_error
