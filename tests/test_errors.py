"""Error handling: every failure mode should raise a precise, typed error
with a message that names the offender."""

from __future__ import annotations

import pytest

from repro import (
    BindError,
    CatalogError,
    Database,
    ExecutionError,
    LexerError,
    MeasureError,
    ParseError,
    SqlError,
    UnsupportedError,
)


def test_error_hierarchy():
    for exc in (LexerError, ParseError, BindError, CatalogError,
                ExecutionError, MeasureError, UnsupportedError):
        assert issubclass(exc, SqlError)
    assert issubclass(MeasureError, BindError)


def test_lexer_error_message_and_position(db):
    with pytest.raises(LexerError, match="line 1, column 8"):
        db.execute("SELECT ~x FROM t")


def test_parse_error_names_found_token(db):
    with pytest.raises(ParseError, match="found 'FROM'"):
        db.execute("SELECT FROM t GROUP BY x")


def test_unknown_table_names_table(db):
    with pytest.raises(CatalogError, match="ghost"):
        db.execute("SELECT 1 FROM ghost")


def test_unknown_column_names_column(paper_db):
    with pytest.raises(BindError, match="shoeSize"):
        paper_db.execute("SELECT shoeSize FROM Orders")


def test_ambiguous_column_names_column(paper_db):
    with pytest.raises(BindError, match="custName"):
        paper_db.execute("SELECT custName FROM Orders, Customers")


def test_unknown_function_names_function(db):
    with pytest.raises(BindError, match="TELEPORT"):
        db.execute("SELECT TELEPORT(1)")


def test_aggregate_in_where_names_clause(paper_db):
    with pytest.raises(BindError, match="WHERE"):
        paper_db.execute("SELECT 1 FROM Orders WHERE SUM(revenue) > 1")


def test_nongrouped_column_names_column(paper_db):
    with pytest.raises(BindError, match="custName"):
        paper_db.execute("SELECT custName FROM Orders GROUP BY prodName")


def test_order_by_position_out_of_range(paper_db):
    with pytest.raises(BindError, match="position 9"):
        paper_db.execute("SELECT prodName FROM Orders ORDER BY 9")


def test_group_by_position_out_of_range(paper_db):
    with pytest.raises(BindError, match="position 4"):
        paper_db.execute("SELECT prodName FROM Orders GROUP BY 4")


def test_aggregate_of_plain_column(paper_db):
    with pytest.raises(MeasureError, match="must be a measure"):
        paper_db.execute("SELECT AGGREGATE(revenue) FROM Orders")


def test_at_on_plain_column(paper_db):
    with pytest.raises(MeasureError, match="AT"):
        paper_db.execute("SELECT revenue AT (ALL) FROM Orders")


def test_current_outside_set(paper_db):
    with pytest.raises(MeasureError, match="CURRENT"):
        paper_db.execute("SELECT CURRENT prodName FROM Orders")


def test_recursive_measures_report_cycle(paper_db):
    with pytest.raises(MeasureError, match="a -> b -> a"):
        paper_db.execute(
            """SELECT AGGREGATE(a) FROM
               (SELECT prodName, b + 0 AS MEASURE a, a + 0 AS MEASURE b
                FROM Orders)"""
        )


def test_measure_without_name(paper_db):
    with pytest.raises(ParseError):
        paper_db.execute("SELECT SUM(revenue) AS MEASURE FROM Orders")


def test_division_by_zero_is_execution_error(db):
    with pytest.raises(ExecutionError, match="division by zero"):
        db.execute("SELECT 1 / (2 - 2)")


def test_scalar_subquery_cardinality_error(paper_db):
    with pytest.raises(ExecutionError, match="more than one row"):
        paper_db.execute("SELECT (SELECT revenue FROM Orders)")


def test_comparison_type_clash(db):
    with pytest.raises(ExecutionError, match="cannot compare"):
        db.execute("SELECT 1 WHERE 'a' < 1")


def test_insert_row_arity(db):
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
    with pytest.raises(CatalogError, match="2 values"):
        db.execute("INSERT INTO t VALUES (1, 2, 3)")


def test_cast_to_measure_type_unsupported(paper_db):
    with pytest.raises(UnsupportedError, match="MEASURE"):
        paper_db.execute("SELECT CAST(revenue AS INTEGER MEASURE) FROM Orders")


def test_setop_arity_message(db):
    with pytest.raises(BindError, match="UNION"):
        db.execute("SELECT 1, 2 UNION SELECT 3")


def test_window_in_group_by(paper_db):
    with pytest.raises(BindError):
        paper_db.execute(
            "SELECT 1 FROM Orders GROUP BY ROW_NUMBER() OVER (ORDER BY revenue)"
        )


def test_values_arity_mismatch(db):
    with pytest.raises(BindError, match="arity"):
        db.execute("VALUES (1, 2), (3)")


def test_errors_do_not_corrupt_database(db):
    """After any failure the database stays usable and unchanged."""
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    for bad in (
        "SELECT nosuch FROM t",
        "INSERT INTO t VALUES ('x')",
        "SELECT 1 / 0 FROM t",
        "SELECT * FROM missing",
    ):
        with pytest.raises(SqlError):
            db.execute(bad)
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 1


def test_view_with_error_rejected_but_catalog_clean(db):
    db.execute("CREATE TABLE t (a INTEGER)")
    with pytest.raises(BindError):
        db.execute("CREATE VIEW v AS SELECT broken FROM t")
    assert "v" not in db.catalog
    db.execute("CREATE VIEW v AS SELECT a FROM t")  # name still free
