"""Hash-join correctness: the equi-join fast path must be indistinguishable
from the nested loop (including outer padding, NULL keys, residuals)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.engine import executor


@pytest.fixture
def jdb(db: Database) -> Database:
    db.execute("CREATE TABLE l (k INTEGER, k2 VARCHAR, lv INTEGER)")
    db.execute("CREATE TABLE r (k INTEGER, k2 VARCHAR, rv INTEGER)")
    db.execute(
        """INSERT INTO l VALUES
           (1, 'a', 10), (1, 'b', 11), (2, 'a', 20), (NULL, 'a', 30)"""
    )
    db.execute(
        """INSERT INTO r VALUES
           (1, 'a', 100), (1, 'a', 101), (2, 'b', 200), (NULL, 'a', 300)"""
    )
    return db


def test_extract_equi_keys():
    from repro.semantics import bound as b
    from repro.types import BOOLEAN, INTEGER, sql_compare

    def col(offset):
        return b.BoundColumn(offset, INTEGER)

    def eq(x, y):
        return b.BoundCall("=", [col(x), col(y)], BOOLEAN, lambda a, c: sql_compare("=", a, c))

    from repro.types import sql_and

    condition = b.BoundCall("AND", [eq(0, 3), eq(4, 1)], BOOLEAN, sql_and)
    keys, residual = executor._extract_equi_keys(condition, 3)
    assert keys == [(0, 0), (1, 1)]
    assert residual == []


def test_extract_keys_keeps_residual():
    from repro.semantics import bound as b
    from repro.types import BOOLEAN, INTEGER, sql_and, sql_compare

    eq = b.BoundCall(
        "=",
        [b.BoundColumn(0, INTEGER), b.BoundColumn(2, INTEGER)],
        BOOLEAN,
        lambda a, c: sql_compare("=", a, c),
    )
    lt = b.BoundCall(
        "<",
        [b.BoundColumn(1, INTEGER), b.BoundColumn(3, INTEGER)],
        BOOLEAN,
        lambda a, c: sql_compare("<", a, c),
    )
    condition = b.BoundCall("AND", [eq, lt], BOOLEAN, sql_and)
    keys, residual = executor._extract_equi_keys(condition, 2)
    assert keys == [(0, 0)]
    assert len(residual) == 1


def test_same_side_equality_is_residual_not_key():
    from repro.semantics import bound as b
    from repro.types import BOOLEAN, INTEGER, sql_compare

    eq = b.BoundCall(
        "=",
        [b.BoundColumn(0, INTEGER), b.BoundColumn(1, INTEGER)],
        BOOLEAN,
        lambda a, c: sql_compare("=", a, c),
    )
    keys, residual = executor._extract_equi_keys(eq, 2)
    assert keys == []
    assert residual == [eq]


def test_inner_join_null_keys_never_match(jdb):
    rows = jdb.execute("SELECT l.lv, r.rv FROM l JOIN r ON l.k = r.k").rows
    assert (30, 300) not in rows
    assert all(lv != 30 for lv, _ in rows)


def test_multi_key_hash_join(jdb):
    rows = jdb.execute(
        "SELECT lv, rv FROM l JOIN r ON l.k = r.k AND l.k2 = r.k2 ORDER BY lv, rv"
    ).rows
    assert rows == [(10, 100), (10, 101)]


def test_residual_predicate_applied(jdb):
    rows = jdb.execute(
        "SELECT lv, rv FROM l JOIN r ON l.k = r.k AND rv > 100 ORDER BY lv, rv"
    ).rows
    assert rows == [(10, 101), (11, 101), (20, 200)]


def test_left_join_padding_with_hash_path(jdb):
    rows = jdb.execute(
        """SELECT lv, rv FROM l LEFT JOIN r ON l.k = r.k AND l.k2 = r.k2
           ORDER BY lv, rv NULLS LAST"""
    ).rows
    assert (11, None) in rows  # (1,'b') has no partner
    assert (30, None) in rows  # NULL key never joins


def test_full_join_hash_path(jdb):
    rows = jdb.execute(
        """SELECT lv, rv FROM l FULL JOIN r ON l.k = r.k AND l.k2 = r.k2
           ORDER BY lv NULLS LAST, rv NULLS LAST"""
    ).rows
    assert (None, 200) in rows  # unmatched right
    assert (None, 300) in rows  # NULL-key right row padded


def test_reversed_equality_direction(jdb):
    forward = jdb.execute("SELECT lv, rv FROM l JOIN r ON l.k = r.k ORDER BY lv, rv").rows
    reverse = jdb.execute("SELECT lv, rv FROM l JOIN r ON r.k = l.k ORDER BY lv, rv").rows
    assert forward == reverse


rows_strategy = st.lists(
    st.tuples(st.integers(0, 3) | st.none(), st.integers(0, 9)),
    max_size=15,
)


@settings(max_examples=50, deadline=None)
@given(rows_strategy, rows_strategy, st.sampled_from(["JOIN", "LEFT JOIN", "FULL JOIN"]))
def test_hash_join_matches_sqlite(left, right, kind):
    import sqlite3

    db = Database()
    db.create_table_from_rows("l", [("k", "INTEGER"), ("v", "INTEGER")], left)
    db.create_table_from_rows("r", [("k", "INTEGER"), ("w", "INTEGER")], right)
    sql = f"SELECT l.v, r.w FROM l {kind} r ON l.k = r.k"
    mine = db.execute(sql).rows

    connection = sqlite3.connect(":memory:")
    connection.execute("CREATE TABLE l (k INTEGER, v INTEGER)")
    connection.execute("CREATE TABLE r (k INTEGER, w INTEGER)")
    connection.executemany("INSERT INTO l VALUES (?, ?)", left)
    connection.executemany("INSERT INTO r VALUES (?, ?)", right)
    theirs = connection.execute(sql).fetchall()

    def canonical(rows):
        return sorted(rows, key=lambda row: tuple((v is None, v or 0) for v in row))

    assert canonical(mine) == canonical(theirs)
