"""Tokenizer unit tests."""

from __future__ import annotations

import pytest

from repro.errors import LexerError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(sql: str) -> list[str]:
    return [t.type.name for t in tokenize(sql)[:-1]]


def texts(sql: str) -> list[str]:
    return [t.text for t in tokenize(sql)[:-1]]


def test_empty_input_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type is TokenType.EOF


def test_keywords_are_case_insensitive():
    assert texts("select SELECT SeLeCt") == ["SELECT", "SELECT", "SELECT"]


def test_identifiers_preserve_case():
    tokens = tokenize("prodName CustAge")
    assert tokens[0].value == "prodName"
    assert tokens[1].value == "CustAge"


def test_integer_literal():
    token = tokenize("42")[0]
    assert token.type is TokenType.NUMBER
    assert token.value == 42
    assert isinstance(token.value, int)


def test_decimal_literal():
    token = tokenize("3.25")[0]
    assert token.value == 3.25
    assert isinstance(token.value, float)


def test_exponent_literal():
    assert tokenize("1e3")[0].value == 1000.0
    assert tokenize("2.5E-2")[0].value == 0.025
    assert tokenize("7e+1")[0].value == 70.0


def test_number_followed_by_dot_method_is_not_float():
    # "1." without digits stays an integer followed by an operator.
    tokens = tokenize("1.x")
    assert tokens[0].value == 1
    assert tokens[1].text == "."


def test_string_literal():
    token = tokenize("'hello'")[0]
    assert token.type is TokenType.STRING
    assert token.value == "hello"


def test_string_with_escaped_quote():
    assert tokenize("'it''s'")[0].value == "it's"


def test_empty_string_literal():
    assert tokenize("''")[0].value == ""


def test_unterminated_string_raises():
    with pytest.raises(LexerError):
        tokenize("'oops")


def test_double_quoted_identifier():
    token = tokenize('"Weird Name"')[0]
    assert token.type is TokenType.IDENT
    assert token.value == "Weird Name"


def test_backquoted_identifier():
    assert tokenize("`from`")[0].value == "from"


def test_unterminated_quoted_identifier_raises():
    with pytest.raises(LexerError):
        tokenize('"oops')


def test_line_comment_is_skipped():
    assert texts("SELECT -- comment here\n1") == ["SELECT", "1"]


def test_block_comment_is_skipped():
    assert texts("SELECT /* multi\nline */ 1") == ["SELECT", "1"]


def test_unterminated_block_comment_raises():
    with pytest.raises(LexerError):
        tokenize("SELECT /* oops")


def test_multichar_operators_lex_greedily():
    assert texts("<> <= >= != || ->") == ["<>", "<=", ">=", "!=", "||", "->"]


def test_single_char_operators():
    assert texts("( ) , . ; + - * / % < > =") == list("(),.;+-*/%<>=")


def test_unexpected_character_raises_with_position():
    with pytest.raises(LexerError) as exc:
        tokenize("SELECT @")
    assert exc.value.line == 1
    assert exc.value.column == 8


def test_line_and_column_tracking():
    tokens = tokenize("SELECT\n  x")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_measure_keywords_recognized():
    assert kinds("MEASURE AGGREGATE AT VISIBLE CURRENT") == ["KEYWORD"] * 5


def test_is_keyword_helper():
    token = tokenize("SELECT")[0]
    assert token.is_keyword("SELECT")
    assert token.is_keyword("SELECT", "FROM")
    assert not token.is_keyword("FROM")


def test_identifier_with_underscore_and_dollar():
    assert tokenize("_foo$bar")[0].value == "_foo$bar"


def test_adjacent_tokens_without_spaces():
    assert texts("a+b*(c)") == ["a", "+", "b", "*", "(", "c", ")"]
