"""Executable documentation: run every SQL block in docs/TUTORIAL.md in
order and check the blocks annotated with ``-- expect:``."""

from __future__ import annotations

import ast as python_ast
import re
from pathlib import Path

import pytest

from repro import Database

TUTORIAL = Path(__file__).resolve().parent.parent / "docs" / "TUTORIAL.md"

_BLOCK = re.compile(r"```sql\n(.*?)```", re.DOTALL)


def sql_blocks() -> list[str]:
    return _BLOCK.findall(TUTORIAL.read_text())


def parse_expectation(block: str):
    """The ``-- expect:`` line holds space-separated Python tuples."""
    for line in block.splitlines():
        line = line.strip()
        if line.startswith("-- expect:"):
            payload = line[len("-- expect:"):].strip()
            return list(python_ast.literal_eval(f"[{payload.replace(') (', '), (')}]"))
    return None


def test_tutorial_has_blocks():
    blocks = sql_blocks()
    assert len(blocks) >= 10
    assert sum(1 for b in blocks if "-- expect:" in b) >= 8


def test_tutorial_executes_and_matches():
    db = Database()
    for block in sql_blocks():
        expectation = parse_expectation(block)
        results = db.execute_script(block)
        if expectation is None:
            continue
        final = next(r for r in reversed(results) if r.columns)
        actual = [
            tuple(
                round(v, 6) if isinstance(v, float) else
                (v.isoformat() if hasattr(v, "isoformat") else v)
                for v in row
            )
            for row in final.rows
        ]
        expected = [
            tuple(round(v, 6) if isinstance(v, float) else v for v in row)
            for row in expectation
        ]
        assert actual == expected, f"block:\n{block}"


def test_tutorial_mentions_every_paper_section():
    text = TUTORIAL.read_text()
    for section in ("3.1", "3.2", "3.5", "3.6", "5.1", "5.4", "6.3"):
        assert section in text
