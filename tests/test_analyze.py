"""``ANALYZE`` column statistics: collection, exactness, and staleness.

The statistics are computed from every row actually present (no
sampling), so every assertion here is exact — including the TPC-H
differential class, which checks the stored counts against the
generator's own cardinality function.
"""

from __future__ import annotations

import json

import pytest

from repro.api import Database
from repro.catalog.stats import (
    HISTOGRAM_BUCKETS,
    analyze_table,
    equi_depth_bounds,
)
from repro.errors import CatalogError, SqlError
from repro.sql import parse_statement
from repro.sql.printer import to_sql


# -- the statistics kernel ----------------------------------------------------


class TestEquiDepthBounds:
    def test_empty_input(self):
        assert equi_depth_bounds([]) == ()

    def test_uniform_integers_cut_at_decile_boundaries(self):
        assert equi_depth_bounds(list(range(1, 101))) == (
            10, 20, 30, 40, 50, 60, 70, 80, 90, 100,
        )

    def test_heavy_hitter_bounds_collapse(self):
        # 90 copies of one value spanning several buckets -> one bound.
        values = [7] * 90 + [8] * 10
        bounds = equi_depth_bounds(values)
        assert bounds == (7, 8)

    def test_fewer_values_than_buckets(self):
        assert equi_depth_bounds([1, 2, 3]) == (1, 2, 3)

    def test_custom_bucket_count(self):
        assert equi_depth_bounds(list(range(1, 9)), buckets=2) == (4, 8)


class TestAnalyzeTableKernel:
    def _stats(self, rows):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER, s VARCHAR)")
        if rows:
            values = ", ".join(
                f"({'NULL' if x is None else x}, "
                f"{'NULL' if s is None else repr(s)})"
                for x, s in rows
            )
            db.execute(f"INSERT INTO t VALUES {values}")
        table = db.catalog.resolve("t")
        return analyze_table("t", table.schema, table.table.rows)

    def test_exact_counts_ndv_nulls_minmax(self):
        stats = self._stats([(1, "a"), (2, "b"), (2, None), (None, "a")])
        assert stats.row_count == 4
        x = stats.column("x")
        assert (x.ndv, x.null_count, x.null_frac) == (2, 1, 0.25)
        assert (x.min_value, x.max_value) == (1, 2)
        assert x.histogram == (1, 2)
        s = stats.column("S")  # case-insensitive lookup
        assert (s.ndv, s.null_count) == (2, 1)
        assert (s.min_value, s.max_value) == ("a", "b")

    def test_empty_table(self):
        stats = self._stats([])
        assert stats.row_count == 0
        x = stats.column("x")
        assert (x.ndv, x.null_count, x.null_frac) == (0, 0, 0.0)
        assert x.min_value is None and x.histogram == ()

    def test_histogram_json_is_json(self):
        stats = self._stats([(i, "v") for i in range(1, 101)])
        bounds = json.loads(stats.column("x").histogram_json())
        assert bounds == [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]

    def test_unorderable_column_degrades_gracefully(self):
        from repro.catalog.schema import Column, TableSchema
        from repro.types import VARCHAR

        schema = TableSchema([Column("v", VARCHAR)])
        stats = analyze_table("t", schema, [(1,), ("x",), (None,)])
        v = stats.column("v")
        assert (v.ndv, v.null_count) == (2, 1)
        assert v.min_value is None and v.histogram == ()


# -- the ANALYZE statement ----------------------------------------------------


class TestAnalyzeStatement:
    def test_parser_printer_round_trip(self):
        for sql in ("ANALYZE", "ANALYZE orders"):
            statement = parse_statement(sql)
            assert to_sql(statement) == sql
            assert to_sql(parse_statement(to_sql(statement))) == sql

    def test_statement_kind(self):
        from repro.telemetry import statement_kind

        assert statement_kind(parse_statement("ANALYZE t")) == "analyze"

    def test_analyze_one_table_returns_summary_row(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER, y VARCHAR)")
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        result = db.execute("ANALYZE t")
        assert result.rows == [("t", 2, 2)]

    def test_analyze_all_tables(self):
        db = Database()
        db.execute("CREATE TABLE b (x INTEGER)")
        db.execute("CREATE TABLE a (y INTEGER)")
        result = db.execute("ANALYZE")
        assert [row[0] for row in result.rows] == ["a", "b"]

    def test_analyze_view_is_an_error(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("CREATE VIEW v AS SELECT x FROM t")
        with pytest.raises(CatalogError, match="ANALYZE targets tables"):
            db.execute("ANALYZE v")

    def test_analyze_missing_table_is_an_error(self):
        with pytest.raises(SqlError):
            Database().execute("ANALYZE nope")

    def test_system_tables_expose_stats(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (2), (NULL)")
        db.execute("ANALYZE t")
        (table_row,) = db.execute(
            "SELECT table_name, row_count, column_count, "
            "mods_since_analyze, stale FROM repro_table_stats"
        ).rows
        assert table_row == ("t", 4, 1, 0, False)
        (column_row,) = db.execute(
            "SELECT table_name, column_name, dtype, ndv, null_count, "
            "null_frac, min_value, max_value, histogram "
            "FROM repro_column_stats"
        ).rows
        assert column_row == (
            "t", "x", "INTEGER", 2, 1, 0.25, "1", "2", "[1, 2]",
        )

    def test_stats_empty_before_analyze(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        assert db.execute("SELECT * FROM repro_table_stats").rows == []
        assert db.table_stats() == []


# -- staleness tracking -------------------------------------------------------


class TestStaleness:
    def _analyzed_db(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        db.execute("ANALYZE t")
        return db

    def _mods(self, db):
        return db.execute(
            "SELECT mods_since_analyze, stale FROM repro_table_stats"
        ).rows[0]

    def test_dml_bumps_the_counter(self):
        db = self._analyzed_db()
        assert self._mods(db) == (0, False)
        db.execute("INSERT INTO t VALUES (4), (5)")
        assert self._mods(db) == (2, True)
        db.execute("UPDATE t SET x = x + 1 WHERE x > 3")
        assert self._mods(db) == (4, True)
        db.execute("DELETE FROM t WHERE x > 4")
        assert self._mods(db) == (6, True)

    def test_truncate_counts_removed_rows(self):
        db = self._analyzed_db()
        db.execute("TRUNCATE TABLE t")
        assert self._mods(db) == (3, True)

    def test_reanalyze_resets_the_counter(self):
        db = self._analyzed_db()
        db.execute("INSERT INTO t VALUES (4)")
        db.execute("ANALYZE t")
        assert self._mods(db) == (0, False)
        assert db.execute(
            "SELECT row_count FROM repro_table_stats"
        ).rows == [(4,)]

    def test_drop_discards_stats(self):
        db = self._analyzed_db()
        db.execute("DROP TABLE t")
        assert db.execute("SELECT * FROM repro_table_stats").rows == []

    def test_replace_discards_stats(self):
        db = self._analyzed_db()
        db.execute("CREATE OR REPLACE TABLE t (y VARCHAR)")
        assert db.execute("SELECT * FROM repro_table_stats").rows == []

    def test_unanalyzed_dml_tracks_nothing(self):
        db = Database()
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1)")
        assert db.catalog.mods_since_analyze("t") == 0


# -- TPC-H differential: stats vs the generator's known cardinalities --------


class TestTpchStats:
    def test_sf_0_001_stats_match_generator_cardinalities(self):
        from repro.workloads.tpch import (
            TpchConfig,
            load_tpch,
            table_cardinalities,
        )

        db = Database()
        loaded = load_tpch(db, TpchConfig(sf=0.001))
        db.execute("ANALYZE")
        stored = {s["table"]: s for s in db.table_stats()}
        assert set(stored) == set(loaded)
        expected = table_cardinalities(0.001)
        for name, count in loaded.items():
            assert stored[name]["row_count"] == count
            assert stored[name]["mods_since_analyze"] == 0
        # Every table but lineitem (drawn per order) hits the spec's
        # scaled cardinality exactly.
        for name in ("region", "nation", "supplier", "part", "partsupp",
                     "customer", "orders"):
            assert stored[name]["row_count"] == expected[name]

        columns = {
            (s["table"], c["column"]): c
            for s in stored.values()
            for c in s["columns"]
        }
        # Primary keys: dense, unique, never null.
        for table, column in (
            ("region", "r_regionkey"),
            ("nation", "n_nationkey"),
            ("customer", "c_custkey"),
            ("orders", "o_orderkey"),
        ):
            stats = columns[(table, column)]
            assert stats["ndv"] == stored[table]["row_count"]
            assert stats["null_count"] == 0
            assert stats["min_value"] in (0, 1)
            assert stats["max_value"] == stats["min_value"] + stats["ndv"] - 1
        # Foreign keys land inside the referenced key space.
        nations = stored["nation"]["row_count"]
        n_fk = columns[("customer", "c_nationkey")]
        assert 0 <= n_fk["min_value"] <= n_fk["max_value"] <= nations - 1
        assert n_fk["ndv"] <= nations
        # region is tiny and fully enumerable.
        r_name = columns[("region", "r_name")]
        assert r_name["ndv"] == 5
        assert r_name["histogram"] == sorted(r_name["histogram"])

    def test_orderkey_histogram_buckets_are_equi_depth(self):
        from repro.workloads.tpch import TpchConfig, load_tpch

        db = Database()
        load_tpch(db, TpchConfig(sf=0.001))
        db.execute("ANALYZE orders")
        (histogram_json,) = db.execute(
            "SELECT histogram FROM repro_column_stats "
            "WHERE column_name = 'o_orderkey'"
        ).rows[0]
        bounds = json.loads(histogram_json)
        assert len(bounds) == HISTOGRAM_BUCKETS
        assert bounds == sorted(bounds)
        # Dense keys starting at 1: each decile bound is exact.
        rows = db.execute("SELECT COUNT(*) FROM orders").scalar()
        assert bounds[-1] == rows
        assert bounds[0] == rows // HISTOGRAM_BUCKETS
