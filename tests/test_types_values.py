"""Value semantics: three-valued logic, null-safe comparison, ordering,
arithmetic — including hypothesis property tests of the algebraic laws."""

from __future__ import annotations

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ExecutionError
from repro.types import (
    BOOLEAN,
    DATE,
    DOUBLE,
    INTEGER,
    UNKNOWN,
    VARCHAR,
    MeasureType,
    SortKey,
    common_type,
    format_value,
    is_distinct,
    is_not_distinct,
    parse_type_name,
    sort_rows,
    sql_add,
    sql_and,
    sql_compare,
    sql_div,
    sql_eq,
    sql_neg,
    sql_not,
    sql_or,
    sql_sub,
)

TRUTH = [True, False, None]


# -- three-valued logic -------------------------------------------------------


@pytest.mark.parametrize("a", TRUTH)
@pytest.mark.parametrize("b", TRUTH)
def test_and_truth_table(a, b):
    if a is False or b is False:
        expected = False
    elif a is None or b is None:
        expected = None
    else:
        expected = True
    assert sql_and(a, b) is expected


@pytest.mark.parametrize("a", TRUTH)
@pytest.mark.parametrize("b", TRUTH)
def test_or_truth_table(a, b):
    if a is True or b is True:
        expected = True
    elif a is None or b is None:
        expected = None
    else:
        expected = False
    assert sql_or(a, b) is expected


def test_not_truth_table():
    assert sql_not(True) is False
    assert sql_not(False) is True
    assert sql_not(None) is None


@given(st.sampled_from(TRUTH), st.sampled_from(TRUTH))
def test_de_morgan(a, b):
    assert sql_not(sql_and(a, b)) == sql_or(sql_not(a), sql_not(b))


@given(st.sampled_from(TRUTH), st.sampled_from(TRUTH), st.sampled_from(TRUTH))
def test_and_associative(a, b, c):
    assert sql_and(sql_and(a, b), c) == sql_and(a, sql_and(b, c))


# -- comparison ----------------------------------------------------------------


def test_eq_propagates_null():
    assert sql_eq(None, 1) is None
    assert sql_eq(1, None) is None
    assert sql_eq(None, None) is None


def test_comparisons():
    assert sql_compare("<", 1, 2) is True
    assert sql_compare(">=", 2, 2) is True
    assert sql_compare("<>", "a", "b") is True
    assert sql_compare("<", None, 2) is None


def test_int_float_comparable():
    assert sql_eq(1, 1.0) is True


def test_bool_not_comparable_with_int():
    with pytest.raises(ExecutionError):
        sql_eq(True, 1)


def test_string_not_comparable_with_int():
    with pytest.raises(ExecutionError):
        sql_compare("<", "a", 1)


def test_dates_comparable():
    assert sql_compare("<", datetime.date(2023, 1, 1), datetime.date(2024, 1, 1))


def test_is_distinct_null_handling():
    assert is_distinct(None, None) is False
    assert is_distinct(None, 1) is True
    assert is_distinct(1, 1) is False
    assert is_not_distinct(None, None) is True
    assert is_not_distinct(2, 2) is True


@given(st.one_of(st.none(), st.integers(), st.text(max_size=5)))
def test_is_not_distinct_reflexive(value):
    assert is_not_distinct(value, value) is True


# -- arithmetic ----------------------------------------------------------------


def test_add_nulls():
    assert sql_add(None, 1) is None
    assert sql_add(1, None) is None


def test_date_plus_days():
    assert sql_add(datetime.date(2024, 1, 1), 30) == datetime.date(2024, 1, 31)
    assert sql_add(30, datetime.date(2024, 1, 1)) == datetime.date(2024, 1, 31)


def test_date_difference_in_days():
    assert sql_sub(datetime.date(2024, 2, 1), datetime.date(2024, 1, 1)) == 31


def test_division_is_true_division():
    assert sql_div(1, 2) == 0.5


def test_division_by_zero_raises():
    with pytest.raises(ExecutionError):
        sql_div(1, 0)


def test_negate():
    assert sql_neg(5) == -5
    assert sql_neg(None) is None


def test_arith_rejects_strings():
    with pytest.raises(ExecutionError):
        sql_add("a", 1)


# -- sorting -----------------------------------------------------------------


def test_sort_rows_multi_key():
    rows = [(1, "b"), (2, "a"), (1, "a")]
    ordered = sort_rows(rows, [(0, False, False), (1, False, False)])
    assert ordered == [(1, "a"), (1, "b"), (2, "a")]


def test_sort_rows_descending():
    rows = [(1,), (3,), (2,)]
    assert sort_rows(rows, [(0, True, False)]) == [(3,), (2,), (1,)]


def test_sort_rows_nulls_last():
    rows = [(None,), (1,), (None,), (0,)]
    ordered = sort_rows(rows, [(0, False, False)])
    assert ordered == [(0,), (1,), (None,), (None,)]


def test_sort_rows_nulls_first():
    rows = [(1,), (None,)]
    assert sort_rows(rows, [(0, False, True)]) == [(None,), (1,)]


def test_sort_stability():
    rows = [(1, "x"), (1, "y"), (1, "z")]
    assert sort_rows(rows, [(0, False, False)]) == rows


@given(st.lists(st.one_of(st.none(), st.integers(-5, 5)), max_size=20))
def test_sort_is_total_and_stable_partition(values):
    rows = [(v,) for v in values]
    ordered = [r[0] for r in sort_rows(rows, [(0, False, False)])]
    non_null = [v for v in ordered if v is not None]
    assert non_null == sorted(non_null)
    # NULLs all sort to the end.
    first_null = next((i for i, v in enumerate(ordered) if v is None), len(ordered))
    assert all(v is None for v in ordered[first_null:])


@given(
    st.one_of(st.integers(), st.text(max_size=3), st.booleans()),
    st.one_of(st.integers(), st.text(max_size=3), st.booleans()),
)
def test_sortkey_totality(a, b):
    ka, kb = SortKey(a), SortKey(b)
    assert (ka < kb) or (kb < ka) or (ka == kb)


# -- types -------------------------------------------------------------------


def test_parse_type_aliases():
    assert parse_type_name("int") is INTEGER
    assert parse_type_name("STRING") is VARCHAR
    assert parse_type_name("float64") is DOUBLE
    assert parse_type_name("bool") is BOOLEAN


def test_parse_unknown_type_raises():
    from repro.errors import TypeCheckError

    with pytest.raises(TypeCheckError):
        parse_type_name("BLOB")


def test_measure_type_wrapping():
    mt = MeasureType(DOUBLE)
    assert mt.is_measure
    assert mt.unwrap() is DOUBLE
    assert str(mt) == "DOUBLE MEASURE"
    assert not DOUBLE.is_measure


def test_common_type_numeric_promotion():
    assert common_type(INTEGER, DOUBLE) is DOUBLE
    assert common_type(UNKNOWN, DATE) is DATE
    assert common_type(VARCHAR, UNKNOWN) is VARCHAR


def test_common_type_conflict_raises():
    from repro.errors import TypeCheckError

    with pytest.raises(TypeCheckError):
        common_type(VARCHAR, INTEGER)


# -- formatting -----------------------------------------------------------------


def test_format_value_paper_style():
    assert format_value(0.6) == "0.60"
    assert format_value(None) == ""
    assert format_value(3) == "3"
    assert format_value(True) == "true"
    assert format_value(datetime.date(2023, 11, 28)) == "2023-11-28"
