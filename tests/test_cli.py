"""CLI shell tests (driven through the Shell object, no TTY needed)."""

from __future__ import annotations

import io

import pytest

from repro import Database
from repro.cli import Shell


@pytest.fixture
def shell():
    out = io.StringIO()
    return Shell(Database(), out=out), out


def feed(shell: Shell, *lines: str) -> None:
    for line in lines:
        shell.handle_line(line)


def test_simple_statement(shell):
    sh, out = shell
    feed(sh, "SELECT 1 + 1 AS two;")
    text = out.getvalue()
    assert "two" in text
    assert "2" in text
    assert "(1 rows)" in text


def test_multiline_statement_buffers(shell):
    sh, out = shell
    feed(sh, "SELECT", "1 AS x", ";")
    assert "x" in out.getvalue()


def test_prompt_changes_while_buffering(shell):
    sh, _ = shell
    assert sh.prompt == "repro=> "
    sh.handle_line("SELECT")
    assert sh.prompt == "   ...> "


def test_error_is_reported_not_raised(shell):
    sh, out = shell
    feed(sh, "SELECT nope FROM nowhere;")
    assert "error:" in out.getvalue()


def test_quit_returns_false(shell):
    sh, _ = shell
    assert sh.handle_line("\\q") is False


def test_help(shell):
    sh, out = shell
    feed(sh, "\\?")
    assert "\\expand" in out.getvalue()


def test_demo_and_list(shell):
    sh, out = shell
    feed(sh, "\\demo", "\\d")
    text = out.getvalue()
    assert "Customers" in text and "Orders" in text


def test_describe_table(shell):
    sh, out = shell
    feed(sh, "\\demo", "\\d Orders")
    text = out.getvalue()
    assert "prodName" in text
    assert "(5 rows)" in text


def test_describe_view_shows_measures(shell):
    sh, out = shell
    feed(
        sh,
        "\\demo",
        "CREATE VIEW eo AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders;",
        "\\d eo",
    )
    text = out.getvalue()
    assert "measure" in text
    assert "INTEGER MEASURE" in text


def test_describe_unknown(shell):
    sh, out = shell
    feed(sh, "\\d nothing")
    assert "error:" in out.getvalue()


def test_timing_toggle(shell):
    sh, out = shell
    feed(sh, "\\timing", "SELECT 1;")
    text = out.getvalue()
    assert "timing on" in text
    assert "time:" in text


def test_expand_meta(shell):
    sh, out = shell
    feed(
        sh,
        "\\demo",
        "CREATE VIEW eo AS SELECT prodName, SUM(revenue) AS MEASURE r FROM Orders;",
        "\\expand SELECT prodName, AGGREGATE(r) FROM eo GROUP BY prodName;",
    )
    assert "IS NOT DISTINCT FROM" in out.getvalue()


def test_load_csv(shell, tmp_path):
    sh, out = shell
    path = tmp_path / "x.csv"
    path.write_text("a,b\n1,one\n2,two\n")
    feed(sh, f"\\load stuff {path}", "SELECT COUNT(*) FROM stuff;")
    text = out.getvalue()
    assert "loaded 2 rows" in text


def test_script_file(shell, tmp_path):
    sh, out = shell
    script = tmp_path / "s.sql"
    script.write_text("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (5); SELECT a FROM t;")
    sh.run_script_file(str(script))
    assert "5" in out.getvalue()


def test_unknown_meta(shell):
    sh, out = shell
    feed(sh, "\\bogus")
    assert "unknown command" in out.getvalue()


def test_multiple_statements_one_line(shell):
    sh, out = shell
    feed(sh, "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT a FROM t;")
    assert "(1 rows)" in out.getvalue()


def test_top_idle(shell):
    sh, out = shell
    feed(sh, "\\top")
    assert "(no running queries)" in out.getvalue()


def test_top_bad_argument(shell):
    sh, out = shell
    feed(sh, "\\top soon")
    assert "usage: \\top [N]" in out.getvalue()


def test_top_shows_running_query():
    import threading
    import time

    out = io.StringIO()
    db = Database(track_progress=True)
    sh = Shell(db, out=out)
    feed(sh, "CREATE TABLE big (x INTEGER);")
    values = ", ".join(f"({i})" for i in range(300))
    feed(sh, f"INSERT INTO big VALUES {values};")

    def slow_join():
        db.execute(
            "SELECT COUNT(*) FROM big AS a JOIN big AS b ON a.x >= 0"
        )

    thread = threading.Thread(target=slow_join)
    thread.start()
    try:
        saw_query = False
        deadline = time.monotonic() + 10
        while thread.is_alive() and time.monotonic() < deadline:
            sh.show_top("1")
            if "Join" in out.getvalue() or "Scan" in out.getvalue():
                saw_query = True
                break
            time.sleep(0.005)
    finally:
        thread.join(timeout=30)
    # The join is fast enough that a poll can miss it on a loaded runner;
    # the shell must at least have produced the header or the idle line.
    text = out.getvalue()
    if saw_query:
        assert "elapsed ms" in text
        assert "SELECT COUNT(*) FROM big" in text
    else:
        assert "(no running queries)" in text


# -- \analyze, \record, \watch ------------------------------------------------


def test_analyze_command(shell):
    sh, out = shell
    feed(sh, "CREATE TABLE t (x INTEGER);", "INSERT INTO t VALUES (1), (2);")
    sh.handle_meta("\\analyze t")
    assert "analyzed t: 2 rows, 1 columns" in out.getvalue()
    feed(sh, "SELECT table_name, row_count FROM repro_table_stats;")
    assert "(1 rows)" in out.getvalue()


def test_analyze_all_and_errors(shell):
    sh, out = shell
    sh.handle_meta("\\analyze")
    assert "(no tables to analyze)" in out.getvalue()
    sh.handle_meta("\\analyze missing")
    assert "error:" in out.getvalue()


def test_record_command_round_trip(shell, tmp_path):
    from repro.history import read_journal

    sh, out = shell
    path = str(tmp_path / "cli.jsonl")
    sh.handle_meta(f"\\record {path}")
    assert f"recording to {path}" in out.getvalue()
    feed(sh, "CREATE TABLE t (x INTEGER);", "INSERT INTO t VALUES (1);")
    sh.handle_meta("\\record")  # status line while active
    sh.handle_meta("\\record off")
    assert "stopped recording" in out.getvalue()
    _, entries = read_journal(path)
    assert [e.kind for e in entries] == ["create_table", "insert"]
    # Recording again after stop opens a fresh journal.
    sh.handle_meta("\\record off")
    assert "not recording" in out.getvalue()


def test_record_refuses_double_start(shell, tmp_path):
    sh, out = shell
    sh.handle_meta(f"\\record {tmp_path / 'a.jsonl'}")
    sh.handle_meta(f"\\record {tmp_path / 'b.jsonl'}")
    assert "already recording" in out.getvalue()
    sh.handle_meta("\\record off")


def test_watch_reruns_until_interrupted(shell, monkeypatch):
    import time as time_module

    sh, out = shell
    feed(sh, "CREATE TABLE t (x INTEGER);", "INSERT INTO t VALUES (1);")
    sleeps = []

    def fake_sleep(seconds):
        sleeps.append(seconds)
        if len(sleeps) >= 3:
            raise KeyboardInterrupt

    monkeypatch.setattr(time_module, "sleep", fake_sleep)
    sh.do_watch("0.5 SELECT COUNT(*) FROM t")
    text = out.getvalue()
    assert "-- watch #3" in text
    assert "\\watch stopped after 3 runs" in text
    assert sleeps == [0.5, 0.5, 0.5]


def test_watch_default_interval_and_usage(shell, monkeypatch):
    import time as time_module

    sh, out = shell
    feed(sh, "CREATE TABLE t (x INTEGER);")
    monkeypatch.setattr(
        time_module,
        "sleep",
        lambda s: (_ for _ in ()).throw(KeyboardInterrupt),
    )
    sh.do_watch("SELECT COUNT(*) FROM t")
    assert "stopped after 1 runs" in out.getvalue()
    sh.do_watch("")
    assert "usage: \\watch" in out.getvalue()


def test_help_lists_new_commands(shell):
    sh, out = shell
    feed(sh, "\\?")
    text = out.getvalue()
    assert "\\analyze" in text
    assert "\\record" in text
    assert "\\watch" in text
    assert "winmagic" in text
