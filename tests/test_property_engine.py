"""Property-based tests of the SQL engine itself: parser/printer round
trips, expression evaluation laws, and relational invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.sql import parse_expression, parse_statement, to_sql

# -- random expression generator -------------------------------------------------

_numbers = st.integers(-100, 100)


@st.composite
def arithmetic_sql(draw, depth=0) -> str:
    """A random integer arithmetic expression as SQL text."""
    if depth >= 3 or draw(st.booleans()):
        return str(draw(_numbers))
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arithmetic_sql(depth + 1))
    right = draw(arithmetic_sql(depth + 1))
    return f"({left} {op} {right})"


@settings(max_examples=60, deadline=None)
@given(arithmetic_sql())
def test_arithmetic_matches_python(sql):
    db = Database()
    assert db.execute(f"SELECT {sql}").scalar() == eval(sql)  # noqa: S307


@settings(max_examples=60, deadline=None)
@given(arithmetic_sql())
def test_expression_print_parse_fixpoint(sql):
    expr = parse_expression(sql)
    printed = to_sql(expr)
    assert to_sql(parse_expression(printed)) == printed


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-50, 50) | st.none(), min_size=0, max_size=20))
def test_sum_count_avg_consistency(values):
    db = Database()
    db.create_table_from_rows("t", [("x", "INTEGER")], [(v,) for v in values])
    row = db.execute("SELECT SUM(x), COUNT(x), AVG(x) FROM t").rows[0]
    total, count, average = row
    non_null = [v for v in values if v is not None]
    if not non_null:
        assert total is None and count == 0 and average is None
    else:
        assert total == sum(non_null)
        assert count == len(non_null)
        assert abs(average - sum(non_null) / len(non_null)) < 1e-9


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("abc"), st.integers(0, 9)), max_size=20))
def test_group_by_partitions_rows(rows):
    db = Database()
    db.create_table_from_rows("t", [("k", "VARCHAR"), ("v", "INTEGER")], rows)
    groups = db.execute("SELECT k, COUNT(*) FROM t GROUP BY k").rows
    assert sum(count for _, count in groups) == len(rows)
    assert len({key for key, _ in groups}) == len(groups)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 9), max_size=15), st.lists(st.integers(0, 9), max_size=15))
def test_union_all_cardinality(left, right):
    db = Database()
    db.create_table_from_rows("l", [("x", "INTEGER")], [(v,) for v in left])
    db.create_table_from_rows("r", [("x", "INTEGER")], [(v,) for v in right])
    rows = db.execute("SELECT x FROM l UNION ALL SELECT x FROM r").rows
    assert len(rows) == len(left) + len(right)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 9), max_size=15), st.lists(st.integers(0, 9), max_size=15))
def test_intersect_except_complement(left, right):
    """|A INTERSECT ALL B| + |A EXCEPT ALL B| == |A| (bag semantics)."""
    db = Database()
    db.create_table_from_rows("l", [("x", "INTEGER")], [(v,) for v in left])
    db.create_table_from_rows("r", [("x", "INTEGER")], [(v,) for v in right])
    inter = len(db.execute("SELECT x FROM l INTERSECT ALL SELECT x FROM r").rows)
    minus = len(db.execute("SELECT x FROM l EXCEPT ALL SELECT x FROM r").rows)
    assert inter + minus == len(left)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-50, 50) | st.none(), max_size=20))
def test_order_by_is_sorted_and_stable_cardinality(values):
    db = Database()
    db.create_table_from_rows("t", [("x", "INTEGER")], [(v,) for v in values])
    ordered = db.execute("SELECT x FROM t ORDER BY x").column("x")
    assert len(ordered) == len(values)
    non_null = [v for v in ordered if v is not None]
    assert non_null == sorted(non_null)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("ab"), st.integers(0, 9)), min_size=1, max_size=20))
def test_window_partition_sum_equals_group_sum(rows):
    db = Database()
    db.create_table_from_rows("t", [("k", "VARCHAR"), ("v", "INTEGER")], rows)
    window = db.execute(
        "SELECT DISTINCT k, SUM(v) OVER (PARTITION BY k) FROM t"
    ).rows
    grouped = db.execute("SELECT k, SUM(v) FROM t GROUP BY k").rows
    assert sorted(window) == sorted(grouped)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("ab"), st.integers(0, 9)), min_size=1, max_size=12))
def test_correlated_subquery_equals_window(rows):
    """The WinMagic correspondence on random data (paper section 5.1)."""
    db = Database()
    db.create_table_from_rows("t", [("k", "VARCHAR"), ("v", "INTEGER")], rows)
    q_sub = """SELECT k, v FROM t AS o
               WHERE v > (SELECT AVG(v) FROM t AS i WHERE i.k = o.k)"""
    q_win = """SELECT k, v FROM
               (SELECT k, v, AVG(v) OVER (PARTITION BY k) AS a FROM t) AS o
               WHERE v > a"""
    assert sorted(db.execute(q_sub).rows) == sorted(db.execute(q_win).rows)


@settings(max_examples=30, deadline=None)
@given(st.text(alphabet="ab_c%", max_size=8))
def test_statement_round_trip_with_random_strings(text):
    sql = f"SELECT '{text}' AS s"
    printed = to_sql(parse_statement(sql))
    assert to_sql(parse_statement(printed)) == printed
    db = Database()
    assert db.execute(sql).scalar() == text
