"""UPDATE, DELETE, and EXPLAIN statements."""

from __future__ import annotations

import pytest

from repro import BindError, CatalogError, Database


@pytest.fixture
def t(db: Database) -> Database:
    db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    return db


def test_update_all_rows(t):
    assert t.execute("UPDATE t SET a = a + 100").rowcount == 3
    assert t.execute("SELECT SUM(a) FROM t").scalar() == 306


def test_update_with_where(t):
    assert t.execute("UPDATE t SET b = 'changed' WHERE a = 2").rowcount == 1
    assert t.execute("SELECT b FROM t WHERE a = 2").scalar() == "changed"
    assert t.execute("SELECT b FROM t WHERE a = 1").scalar() == "x"


def test_update_multiple_columns_sees_old_values(t):
    """All assignments read the pre-update row (standard SQL)."""
    t.execute("UPDATE t SET a = a * 10, b = b || CAST(a AS VARCHAR) WHERE a = 3")
    assert t.execute("SELECT a, b FROM t WHERE a = 30").rows == [(30, "z3")]


def test_update_coerces_types(t):
    t.execute("UPDATE t SET a = 2.0 WHERE a = 1")
    value = t.execute("SELECT a FROM t WHERE b = 'x'").scalar()
    assert value == 2 and isinstance(value, int)


def test_update_unknown_column_raises(t):
    with pytest.raises(CatalogError):
        t.execute("UPDATE t SET nosuch = 1")


def test_update_view_rejected(t):
    t.execute("CREATE VIEW v AS SELECT a FROM t")
    with pytest.raises(CatalogError):
        t.execute("UPDATE v SET a = 1")


def test_update_matching_nothing(t):
    assert t.execute("UPDATE t SET a = 0 WHERE FALSE").rowcount == 0


def test_delete_with_where(t):
    assert t.execute("DELETE FROM t WHERE a >= 2").rowcount == 2
    assert t.execute("SELECT COUNT(*) FROM t").scalar() == 1


def test_delete_all(t):
    assert t.execute("DELETE FROM t").rowcount == 3
    assert t.execute("SELECT COUNT(*) FROM t").scalar() == 0


def test_delete_null_predicate_keeps_row(t):
    t.execute("INSERT INTO t VALUES (NULL, 'n')")
    t.execute("DELETE FROM t WHERE a > 0")
    assert t.execute("SELECT COUNT(*) FROM t").scalar() == 1  # the NULL row


def test_update_where_with_subquery(t):
    t.execute("UPDATE t SET b = 'top' WHERE a = (SELECT MAX(a) FROM t)")
    assert t.execute("SELECT b FROM t WHERE a = 3").scalar() == "top"


def test_dml_round_trip_through_printer():
    from repro.sql import parse_statement, to_sql

    for sql in (
        "UPDATE t SET a = 1, b = 'x' WHERE c > 2",
        "DELETE FROM t WHERE a IS NULL",
        "EXPLAIN SELECT 1",
    ):
        printed = to_sql(parse_statement(sql))
        assert to_sql(parse_statement(printed)) == printed


def test_explain_shows_plan_tree(t):
    result = t.execute("EXPLAIN SELECT a FROM t WHERE a > 1 ORDER BY a DESC")
    text = "\n".join(r[0] for r in result.rows)
    assert "Scan(t)" in text
    assert "Filter" in text
    assert "Sort" in text


def test_explain_respects_optimizer(db):
    db.execute("CREATE TABLE e (a INTEGER)")
    hot = "\n".join(
        r[0] for r in db.execute("EXPLAIN SELECT a FROM e WHERE 1 = 1").rows
    )
    assert "Filter" not in hot  # the TRUE filter was optimized away

    cold = Database(optimizer=False)
    cold.execute("CREATE TABLE e (a INTEGER)")
    raw = "\n".join(
        r[0] for r in cold.execute("EXPLAIN SELECT a FROM e WHERE 1 = 1").rows
    )
    assert "Filter" in raw


def test_explain_aggregate_plan(t):
    result = t.execute("EXPLAIN SELECT b, COUNT(*) FROM t GROUP BY b")
    text = "\n".join(r[0] for r in result.rows)
    assert "Aggregate(keys=1, aggs=1, sets=1)" in text


def test_measures_in_update_where_rejected(t):
    # Measures live in views; base-table DML has no measure scope.
    with pytest.raises(BindError):
        t.execute("UPDATE t SET a = 1 WHERE AGGREGATE(a) > 0")
