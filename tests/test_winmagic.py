"""The WinMagic rewrite (paper section 5.1, Zuzarte et al. 2003)."""

from __future__ import annotations

import pytest

from repro import Database, UnsupportedError
from repro.core.winmagic import winmagic_rewrite
from repro.sql import parse_query, to_sql


def rewrite(db: Database, sql: str) -> str:
    return to_sql(winmagic_rewrite(db, parse_query(sql)))


Q1 = """SELECT o.prodName, o.orderDate FROM Orders AS o
        WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS o1
                           WHERE o1.prodName = o.prodName)
        ORDER BY 1, 2"""


def test_listing12_q1_becomes_q3(paper_db):
    rewritten = rewrite(paper_db, Q1)
    assert "OVER (PARTITION BY prodName)" in rewritten
    assert "(SELECT" not in rewritten.replace("FROM (SELECT", "")
    assert paper_db.execute(rewritten).rows == paper_db.execute(Q1).rows


def test_rewrite_in_select_list(paper_db):
    sql = """SELECT o.prodName,
                    o.revenue - (SELECT AVG(revenue) FROM Orders AS i
                                 WHERE i.prodName = o.prodName) AS delta
             FROM Orders AS o ORDER BY 1, 2"""
    rewritten = rewrite(paper_db, sql)
    assert "OVER" in rewritten
    assert paper_db.execute(rewritten).rows == paper_db.execute(sql).rows


def test_correlation_order_insensitive(paper_db):
    sql = """SELECT o.prodName FROM Orders AS o
             WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS i
                                WHERE o.prodName = i.prodName)
             ORDER BY 1"""
    rewritten = rewrite(paper_db, sql)
    assert paper_db.execute(rewritten).rows == paper_db.execute(sql).rows


def test_multi_key_correlation(paper_db):
    sql = """SELECT o.prodName FROM Orders AS o
             WHERE o.revenue >= (SELECT MAX(revenue) FROM Orders AS i
                                 WHERE i.prodName = o.prodName
                                   AND i.custName = o.custName)
             ORDER BY 1"""
    rewritten = rewrite(paper_db, sql)
    assert "PARTITION BY prodName, custName" in rewritten
    assert paper_db.execute(rewritten).rows == paper_db.execute(sql).rows


def test_duplicate_subqueries_share_one_window(paper_db):
    sql = """SELECT o.prodName FROM Orders AS o
             WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS i
                                WHERE i.prodName = o.prodName)
                OR o.cost > (SELECT AVG(revenue) FROM Orders AS i
                             WHERE i.prodName = o.prodName)
             ORDER BY 1"""
    rewritten = rewrite(paper_db, sql)
    assert rewritten.count("OVER") == 1
    assert paper_db.execute(rewritten).rows == paper_db.execute(sql).rows


def test_different_aggregates_get_separate_windows(paper_db):
    sql = """SELECT o.prodName FROM Orders AS o
             WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS i
                                WHERE i.prodName = o.prodName)
               AND o.revenue < (SELECT MAX(revenue) FROM Orders AS i
                                WHERE i.prodName = o.prodName) + 1
             ORDER BY 1"""
    rewritten = rewrite(paper_db, sql)
    assert rewritten.count("OVER") == 2
    assert paper_db.execute(rewritten).rows == paper_db.execute(sql).rows


def test_different_table_not_rewritten(paper_db):
    with pytest.raises(UnsupportedError):
        rewrite(
            paper_db,
            """SELECT o.prodName FROM Orders AS o
               WHERE o.revenue > (SELECT AVG(custAge) FROM Customers AS c
                                  WHERE c.custName = o.custName)""",
        )


def test_local_subquery_predicate_not_rewritten(paper_db):
    with pytest.raises(UnsupportedError):
        rewrite(
            paper_db,
            """SELECT o.prodName FROM Orders AS o
               WHERE o.revenue > (SELECT AVG(revenue) FROM Orders AS i
                                  WHERE i.prodName = o.prodName
                                    AND i.cost > 1)""",
        )


def test_grouped_outer_query_not_rewritten(paper_db):
    with pytest.raises(UnsupportedError):
        rewrite(
            paper_db,
            """SELECT prodName, COUNT(*) FROM Orders GROUP BY prodName""",
        )


def test_uncorrelated_same_table_subquery_becomes_global_window(paper_db):
    """No correlation keys -> an empty partition (the whole input), which is
    still a valid and profitable rewrite."""
    sql = """SELECT prodName FROM Orders
             WHERE revenue > (SELECT AVG(revenue) FROM Orders) ORDER BY 1"""
    rewritten = rewrite(paper_db, sql)
    assert "OVER ()" in rewritten
    assert paper_db.execute(rewritten).rows == paper_db.execute(sql).rows


def test_winmagic_on_synthetic_workload():
    from repro.workloads import WorkloadConfig, workload_database

    db = workload_database(WorkloadConfig(orders=500, products=10, customers=20))
    rewritten = rewrite(db, Q1)
    assert sorted(db.execute(rewritten).rows) == sorted(db.execute(Q1).rows)
