"""Live query observability end to end: progress tracking, memory
budgets, trace propagation, and the HTTP sidecar.

The acceptance scenario is the headline test: while
``visible_orders_by_region`` runs at SF 0.01 in one server session, a
second session polling ``repro_running_queries`` sees monotonically
increasing ``rows_processed`` and a current operator — then cancels the
doomed query rather than waiting out its full quadratic runtime.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import Database
from repro.engine.progress import ProgressState, QueryRegistry
from repro.errors import ResourceExhausted
from repro.server import ClientError, ServerThread, connect
from repro.workloads.tpch import TPCH_QUERIES, tpch_measure_database

VISIBLE = TPCH_QUERIES["visible_orders_by_region"]


def _poll(conn, sql, predicate, *, timeout=30.0, interval=0.05):
    """Poll ``sql`` on ``conn`` until ``predicate(rows)`` or timeout."""
    deadline = time.monotonic() + timeout
    rows = []
    while time.monotonic() < deadline:
        rows = conn.query(sql).rows
        if predicate(rows):
            return rows
        time.sleep(interval)
    return rows


# -- memory budgets -----------------------------------------------------------


class TestMemoryBudget:
    def _db(self, **kwargs) -> Database:
        db = Database(telemetry=True, **kwargs)
        db.execute("CREATE TABLE t (x INTEGER)")
        # Batched inserts stay under the budget; only the cross join of
        # the loaded table is big enough to breach it.
        for start in range(0, 1500, 500):
            values = ", ".join(f"({i})" for i in range(start, start + 500))
            db.execute(f"INSERT INTO t VALUES {values}")
        return db

    def test_budget_breach_raises_resource_exhausted(self):
        db = self._db(memory_limit_bytes=50_000)
        with pytest.raises(ResourceExhausted) as excinfo:
            db.query("SELECT a.x FROM t AS a, t AS b")
        message = str(excinfo.value)
        assert "memory budget exhausted" in message
        assert "limit 50000" in message

    def test_same_query_succeeds_without_a_limit(self):
        db = self._db()
        small = db.query(
            "SELECT COUNT(*) FROM (SELECT a.x FROM t AS a, t AS b) AS j"
        )
        assert small.rows[0][0] == 1500 * 1500

    def test_breach_leaves_partial_profile_in_slow_log(self):
        # The threshold is astronomically high: only the breach hook, not
        # the duration, can put the query in the slow log.
        db = self._db(memory_limit_bytes=50_000, slow_query_ms=1e12)
        with pytest.raises(ResourceExhausted):
            db.query("SELECT a.x FROM t AS a, t AS b")
        entries = db.slow_queries()
        assert len(entries) == 1
        entry = entries[0]
        assert "t AS" in entry["sql"].replace('"', "")
        profile = entry["profile"]
        assert profile is not None
        # The partial profile still carries the operator tree: the scan
        # that fed the doomed join completed and was recorded.
        assert "Scan" in json.dumps(profile)

    def test_breach_records_a_resource_exhausted_event(self):
        db = self._db(memory_limit_bytes=50_000)
        with pytest.raises(ResourceExhausted):
            db.query("SELECT a.x FROM t AS a, t AS b")
        events = [e["event"] for e in db.events()]
        assert "resource_exhausted" in events

    def test_resource_exhausted_is_a_catchable_sql_error(self):
        from repro.errors import ExecutionError, SqlError

        assert issubclass(ResourceExhausted, ExecutionError)
        assert issubclass(ResourceExhausted, SqlError)

    def test_limit_implies_progress_tracking(self):
        db = Database(memory_limit_bytes=1 << 30)
        assert db.progress_enabled()

    def test_bare_database_tracks_nothing(self):
        db = Database()
        assert not db.progress_enabled()
        assert len(db.running) == 0

    def test_explicit_flag_wins_over_telemetry(self):
        assert Database(telemetry=True).progress_enabled()
        assert not Database(
            telemetry=True, track_progress=False
        ).progress_enabled()
        assert Database(track_progress=True).progress_enabled()

    def test_breach_over_the_server_names_the_class(self):
        db = self._db(memory_limit_bytes=50_000, slow_query_ms=1e12)
        with ServerThread(db) as server:
            with connect(server.server.host, server.server.port) as conn:
                with pytest.raises(ClientError) as excinfo:
                    conn.query("SELECT a.x FROM t AS a, t AS b")
                assert excinfo.value.error_class == "ResourceExhausted"
        # The session path freezes the partial profile too.
        assert len(db.slow_queries()) == 1


# -- progress bookkeeping (unit level) ---------------------------------------


class TestProgressState:
    def test_estimated_vs_actual_rows(self):
        db = Database(telemetry=True)
        db.execute("CREATE TABLE nums (n INTEGER)")
        db.execute(
            "INSERT INTO nums VALUES " + ", ".join(f"({i})" for i in range(10))
        )
        from repro.sql import parse_query

        sql = "SELECT n FROM nums WHERE n < 5"
        planned = db.plan_query(parse_query(sql), sql=sql)
        from repro.analysis.dataflow import analyze_plan

        analyze_plan(planned.plan, db.catalog)
        state = ProgressState("q1")
        state.attach_plan(planned.plan)
        rows = state.operator_rows()
        # Every operator pre-registered, pending, with dataflow bounds.
        assert rows and all(r[7] == "pending" for r in rows)
        scan_rows = [r for r in rows if "Scan" in r[2]]
        assert scan_rows, rows
        # The scan's cardinality is exactly known: 10 rows.
        assert scan_rows[0][3] == 10 and scan_rows[0][4] == 10

        db.execute_planned(planned)
        # Tracked execution through the Database shows actuals; here we
        # drive the state directly for determinism.
        for node in planned.plan.walk():
            state.enter_operator(node)
        assert state.current_operator

    def test_registry_snapshot_excludes_the_observer(self):
        registry = QueryRegistry()
        a = registry.start(sql="SELECT 1")
        b = registry.start(sql="SELECT 2")
        ids = {s.query_id for s in registry.snapshot()}
        assert ids == {a.query_id, b.query_id}
        assert {s.query_id for s in registry.snapshot(exclude=a.query_id)} == {
            b.query_id
        }
        registry.finish(a)
        registry.finish(b)
        assert len(registry) == 0
        assert registry.started_total == 2

    def test_tick_accounts_against_the_budget(self):
        state = ProgressState("q1", memory_limit_bytes=1000)

        class FakePlan:
            def label(self):
                return "Join"

            def walk(self):
                yield self

        plan = FakePlan()
        state.attach_plan(plan)
        with pytest.raises(ResourceExhausted):
            # 256 buffered rows at the default 80-byte estimate blows a
            # 1000-byte budget on the first checkpoint.
            state.tick(plan, buffered_rows=256)

    def test_finished_query_leaves_the_registry(self):
        db = Database(track_progress=True)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        assert db.query("SELECT SUM(x) FROM t").rows[0][0] == 6
        assert db.running_queries() == []


# -- the acceptance scenario --------------------------------------------------


@pytest.fixture(scope="module")
def tpch_server():
    db = tpch_measure_database(0.01, telemetry=True)
    with ServerThread(db, http_port=0) as server:
        yield server


class TestLiveProgress:
    def test_second_session_watches_the_first(self, tpch_server):
        host, port = tpch_server.server.host, tpch_server.server.port
        with connect(host, port) as runner, connect(host, port) as watcher:
            failure = {}

            def run_doomed():
                try:
                    runner.query(VISIBLE)
                except ClientError as exc:
                    failure["error"] = exc

            thread = threading.Thread(target=run_doomed)
            thread.start()
            try:
                samples = []
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline and len(samples) < 3:
                    rows = watcher.query(
                        "SELECT query_id, rows_processed, current_operator "
                        "FROM repro_running_queries"
                    ).rows
                    for qid, processed, operator in rows:
                        if processed and (
                            not samples or processed > samples[-1][1]
                        ):
                            samples.append((qid, processed, operator))
                    time.sleep(0.05)
                assert len(samples) >= 2, "never saw the query make progress"
                # Monotonically increasing rows_processed, one query id,
                # and a live operator label on every sample.
                assert all(s[0] == samples[0][0] for s in samples)
                counts = [s[1] for s in samples]
                assert counts == sorted(counts) and counts[0] < counts[-1]
                assert all(s[2] for s in samples)

                progress = watcher.query(
                    "SELECT query_id, operator, rows_out, calls, state "
                    "FROM repro_query_progress"
                ).rows
                assert progress, "no per-operator progress rows"
                assert {r[4] for r in progress} <= {
                    "pending",
                    "running",
                    "done",
                }
                assert any(r[4] != "pending" for r in progress)
            finally:
                runner.cancel()
                thread.join(timeout=30)
            assert not thread.is_alive()
            assert failure["error"].error_class == "QueryCancelled"

    def test_watcher_never_sees_itself(self, tpch_server):
        host, port = tpch_server.server.host, tpch_server.server.port
        with connect(host, port) as conn:
            rows = conn.query(
                "SELECT sql FROM repro_running_queries AS watcher_self_probe"
            ).rows
            assert all(
                "watcher_self_probe" not in (r[0] or "") for r in rows
            )

    def test_http_sidecar_sees_the_in_flight_query(self, tpch_server):
        host = tpch_server.server.host
        http_port = tpch_server.http_port
        assert http_port, "sidecar did not start"
        with connect(host, tpch_server.server.port) as runner:
            thread = threading.Thread(
                target=lambda: _swallow(lambda: runner.query(VISIBLE))
            )
            thread.start()
            try:
                deadline = time.monotonic() + 30
                queries = []
                while time.monotonic() < deadline and not queries:
                    body = _http_get(host, http_port, "/queries")
                    queries = json.loads(body)["queries"]
                    time.sleep(0.05)
                assert queries, "sidecar never reported the running query"
                entry = queries[0]
                assert entry["query_id"].startswith("q")
                assert entry["rows_processed"] >= 0
                assert entry["elapsed_ms"] >= 0
            finally:
                runner.cancel()
                thread.join(timeout=30)


def _swallow(fn):
    try:
        fn()
    except ClientError:
        pass


# -- cancellation latency (satellite) ----------------------------------------


class TestCancellationLatency:
    def test_cancel_aborts_visible_orders_promptly(self):
        db = tpch_measure_database(0.001, telemetry=True)
        with ServerThread(db) as server:
            with connect(server.server.host, server.server.port) as conn:
                # The query only takes a few hundred ms at this scale, so
                # catching it mid-flight is a race; the progress registry
                # is the referee — cancel fires the moment the query is
                # observably running.  A finished-before-cancel round is
                # retried.
                for _ in range(5):
                    outcome = {}

                    def run_doomed():
                        try:
                            conn.query(VISIBLE)
                            outcome["ok"] = True
                        except ClientError as exc:
                            outcome["error"] = exc

                    thread = threading.Thread(target=run_doomed)
                    thread.start()
                    while thread.is_alive() and not len(db.running):
                        time.sleep(0.002)
                    cancelled_at = time.monotonic()
                    conn.cancel()
                    thread.join(timeout=10)
                    latency = time.monotonic() - cancelled_at
                    assert not thread.is_alive(), "cancel did not take"
                    if "error" not in outcome:
                        continue  # finished before the cancel landed
                    error = outcome["error"]
                    assert error.error_class == "QueryCancelled"
                    # The 256-row checkpoints bound the abort latency far
                    # below the query's own runtime.
                    assert latency < 2.0, f"cancel took {latency:.1f}s"
                    return
                pytest.fail("query never observed mid-flight in 5 rounds")


# -- concurrent readers (satellite) ------------------------------------------


class TestConcurrentReaders:
    READERS = 4
    POLLS = 15

    def test_polling_readers_see_no_torn_rows(self):
        db = Database(telemetry=True)
        db.execute("CREATE TABLE big (x INTEGER)")
        values = ", ".join(f"({i})" for i in range(300))
        db.execute(f"INSERT INTO big VALUES {values}")
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                db.query(
                    "SELECT COUNT(*) FROM big AS a JOIN big AS b "
                    "ON a.x >= b.x"
                )

        def reader(n):
            try:
                for _ in range(self.POLLS):
                    rows = db.query(
                        f"SELECT * FROM repro_running_queries AS probe_{n}"
                    ).rows
                    for row in rows:
                        assert len(row) == 10, f"torn row: {row!r}"
                        query_id, _, sql, *_ = row
                        assert isinstance(query_id, str)
                        assert query_id.startswith("q")
                        assert row[6] >= 0, "negative rows_processed"
                        assert row[8] >= 0, "negative memory_bytes"
                        # This reader never observes itself.
                        assert f"probe_{n}" not in (sql or "")
            except AssertionError as exc:
                errors.append(exc)

        writers = [threading.Thread(target=writer) for _ in range(2)]
        readers = [
            threading.Thread(target=reader, args=(n,))
            for n in range(self.READERS)
        ]
        for t in writers + readers:
            t.start()
        for t in readers:
            t.join(timeout=60)
        stop.set()
        for t in writers:
            t.join(timeout=60)
        assert not errors, errors[0]


# -- trace propagation --------------------------------------------------------


TRACEPARENT = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"


class TestTraceparent:
    def _server_db(self):
        db = Database(telemetry=True)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        return db

    def test_traceparent_flows_into_exported_traces(self):
        db = self._server_db()
        with ServerThread(db) as server:
            with connect(
                server.server.host,
                server.server.port,
                traceparent=TRACEPARENT,
            ) as conn:
                conn.query("SELECT SUM(x) FROM t")
        traces = json.loads(db.export_traces())["traces"]
        spliced = [t for t in traces if t.get("traceparent") == TRACEPARENT]
        assert spliced, "no trace adopted the caller's context"
        trace = spliced[-1]
        assert trace["trace_id"] == "0af7651916cd43dd8448eb211c80319c"
        # The root span is parented under the caller's span id.
        roots = [s for s in trace["spans"] if s["parent_span_id"] is not None]
        assert any(
            s["parent_span_id"] == "b7ad6b7169203331" for s in trace["spans"]
        ), roots

    def test_per_call_traceparent_overrides_the_connection(self):
        db = self._server_db()
        other = "00-" + "ef" * 16 + "-" + "12" * 8 + "-00"
        with ServerThread(db) as server:
            with connect(
                server.server.host,
                server.server.port,
                traceparent=TRACEPARENT,
            ) as conn:
                conn.query("SELECT x FROM t", traceparent=other)
        traces = json.loads(db.export_traces())["traces"]
        assert traces[-1]["trace_id"] == "ef" * 16

    def test_malformed_traceparent_is_ignored(self):
        db = self._server_db()
        with ServerThread(db) as server:
            with connect(server.server.host, server.server.port) as conn:
                conn.query(
                    "SELECT x FROM t", traceparent="not-a-traceparent"
                )
                conn.query(
                    "SELECT x FROM t",
                    traceparent="00-" + "0" * 32 + "-" + "0" * 16 + "-00",
                )
        traces = json.loads(db.export_traces())["traces"]
        # Both queries got deterministic local trace ids, not the junk.
        assert all("traceparent" not in t for t in traces)

    def test_events_carry_the_traceparent(self):
        db = self._server_db()
        with ServerThread(db) as server:
            with connect(server.server.host, server.server.port) as conn:
                conn.query("SELECT x FROM t", traceparent=TRACEPARENT)
        statements = [
            e for e in db.events() if e.get("traceparent") == TRACEPARENT
        ]
        assert statements, "no event carried the traceparent"

    def test_parse_traceparent_rejects_junk(self):
        from repro.telemetry import parse_traceparent

        assert parse_traceparent(TRACEPARENT) == (
            "0af7651916cd43dd8448eb211c80319c",
            "b7ad6b7169203331",
            "01",
        )
        for junk in (
            None,
            "",
            "banana",
            "00-short-b7ad6b7169203331-01",
            "00-" + "0" * 32 + "-b7ad6b7169203331-01",  # zero trace id
            "00-0af7651916cd43dd8448eb211c80319c-" + "0" * 16 + "-01",
        ):
            assert parse_traceparent(junk) is None, junk


# -- the HTTP sidecar ---------------------------------------------------------


def _http_get(host, port, path):
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=10
    ) as response:
        return response.read().decode("utf-8")


class TestHttpSidecar:
    @pytest.fixture()
    def server(self):
        db = Database(telemetry=True)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        with ServerThread(db, http_port=0) as thread:
            yield thread

    def test_healthz_reports_sessions_and_running(self, server):
        with connect(server.server.host, server.server.port):
            body = json.loads(
                _http_get(server.server.host, server.http_port, "/healthz")
            )
        assert body["status"] == "ok"
        assert body["sessions"] >= 1
        assert body["running"] >= 0

    def test_metrics_is_prometheus_text(self, server):
        with connect(server.server.host, server.server.port) as conn:
            conn.query("SELECT SUM(x) FROM t")
        url = f"http://{server.server.host}:{server.http_port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            assert response.headers["Content-Type"].startswith(
                "text/plain; version=0.0.4"
            )
            body = response.read().decode("utf-8")
        assert "# TYPE queries_total counter" in body
        assert "# HELP queries_total" in body

    def test_queries_endpoint_is_json(self, server):
        body = json.loads(
            _http_get(server.server.host, server.http_port, "/queries")
        )
        assert body == {"queries": []}

    def test_unknown_path_is_404(self, server):
        url = f"http://{server.server.host}:{server.http_port}/nope"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(url, timeout=10)
        assert excinfo.value.code == 404

    def test_sidecar_stops_with_the_server(self):
        db = Database(telemetry=True)
        thread = ServerThread(db, http_port=0)
        thread.start()
        port = thread.http_port
        assert port
        _http_get("127.0.0.1", port, "/healthz")
        thread.stop()
        with pytest.raises(Exception):
            _http_get("127.0.0.1", port, "/healthz")
