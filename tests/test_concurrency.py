"""Concurrency guarantees: thread-safe telemetry stores, the RWLock, and
the session layer's no-torn-reads property.

The stress tests here are deliberately small (a few threads, a few
thousand operations) so they run in CI time, but every assertion is
exact — lost increments and torn row sets are counted, not sampled.
"""

from __future__ import annotations

import threading

import pytest

from repro.api import Database
from repro.server import SessionManager
from repro.storage.locks import RWLock
from repro.telemetry import EventLog, MetricsRegistry
from repro.introspect.statements import StatementStatsStore


def _run_threads(count, target):
    threads = [threading.Thread(target=target, args=(i,)) for i in range(count)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


# -- satellite: thread-safe stores (no lost increments) ----------------------


class TestStoreThreadSafety:
    THREADS = 8
    OPS = 2000

    def test_counter_increments_are_never_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "test", ("worker",))
        plain = registry.counter("plain_total", "test")

        def work(i):
            for _ in range(self.OPS):
                counter.inc(worker=f"w{i % 2}")
                plain.inc()

        _run_threads(self.THREADS, work)
        assert plain.value() == self.THREADS * self.OPS
        series = dict(counter.samples())
        assert sum(series.values()) == self.THREADS * self.OPS

    def test_histogram_observations_are_never_lost(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_ms", "test", buckets=(1.0, 10.0, 100.0))

        def work(i):
            for n in range(self.OPS):
                hist.observe(float(n % 50))

        _run_threads(self.THREADS, work)
        assert hist.count() == self.THREADS * self.OPS

    def test_event_log_seqs_unique_under_contention(self):
        log = EventLog(capacity=self.THREADS * self.OPS + 1)

        def work(i):
            for n in range(self.OPS):
                log.record("tick", worker=i, n=n)

        _run_threads(self.THREADS, work)
        events = log.tail()
        assert len(events) == self.THREADS * self.OPS
        seqs = [e["seq"] for e in events]
        assert len(set(seqs)) == len(seqs)
        assert seqs == sorted(seqs)

    def test_statement_stats_calls_are_exact(self):
        store = StatementStatsStore()

        def work(i):
            for _ in range(self.OPS):
                store.observe("fp1", "SELECT ?", 1.0, rows=2)

        _run_threads(self.THREADS, work)
        (entry,) = store.entries()
        assert entry.calls == self.THREADS * self.OPS
        assert entry.rows_returned == 2 * self.THREADS * self.OPS


# -- satellite: atomic reset (flips never orphaned) --------------------------


class TestAtomicReset:
    def test_reset_clears_entries_and_flips_together(self):
        store = StatementStatsStore()
        store.observe("fp", "q", 1.0, strategy="interpreter", plan_hash="a")
        store.observe("fp", "q", 1.0, strategy="summary", plan_hash="b")
        assert len(store.flips()) == 1
        store.reset()
        assert store.entries() == []
        assert store.flips() == []

    def test_snapshot_never_shows_flip_without_entry(self):
        """Concurrent observe+reset: any snapshot that contains a flip must
        also contain that flip's statistics entry."""
        store = StatementStatsStore()
        stop = threading.Event()
        violations = []

        def flipper():
            toggle = 0
            while not stop.is_set():
                toggle ^= 1
                store.observe(
                    "fp", "q", 1.0,
                    strategy="interpreter",
                    plan_hash="a" if toggle else "b",
                )

        def resetter():
            for _ in range(300):
                store.reset()

        def checker():
            while not stop.is_set():
                entries, flips, _strategies = store.snapshot()
                fingerprints = {e.fingerprint for e in entries}
                for flip in flips:
                    if flip.fingerprint not in fingerprints:
                        violations.append(flip)

        threads = [
            threading.Thread(target=flipper),
            threading.Thread(target=checker),
        ]
        for t in threads:
            t.start()
        resetter()
        stop.set()
        for t in threads:
            t.join()
        assert violations == []

    def test_database_reset_stats_clears_flip_ring(self):
        db = Database(telemetry=True)
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        store = db.telemetry.statements
        store.observe("fp", "q", 1.0, strategy="interpreter", plan_hash="a")
        store.observe("fp", "q", 1.0, strategy="summary", plan_hash="b")
        assert db.plan_flips()
        db.reset_stats()
        assert db.stat_statements() == []
        assert db.plan_flips() == []


# -- the RWLock itself --------------------------------------------------------


class TestRWLock:
    def test_read_is_reentrant(self):
        lock = RWLock()
        with lock.read():
            with lock.read():
                assert lock.readers == 2
        assert lock.readers == 0

    def test_write_excludes_readers(self):
        lock = RWLock()
        observed = []
        ready = threading.Event()

        def reader():
            ready.set()
            with lock.read():
                observed.append("read")

        lock.acquire_write()
        t = threading.Thread(target=reader)
        t.start()
        ready.wait()
        assert observed == []  # reader is blocked behind the writer
        lock.release_write()
        t.join()
        assert observed == ["read"]

    def test_no_read_to_write_upgrade(self):
        lock = RWLock()
        with lock.read():
            with pytest.raises(RuntimeError):
                lock.acquire_write()

    def test_writer_not_starved_by_reader_stream(self):
        lock = RWLock()
        wrote = threading.Event()

        def writer():
            with lock.write():
                wrote.set()

        with lock.read():
            t = threading.Thread(target=writer)
            t.start()
            # Give the writer time to queue; new read attempts from other
            # threads must now wait behind it.
            blocked = threading.Event()
            entered = threading.Event()

            def late_reader():
                blocked.set()
                with lock.read():
                    entered.set()

            import time

            time.sleep(0.05)
            t2 = threading.Thread(target=late_reader)
            t2.start()
            blocked.wait()
            time.sleep(0.05)
            assert not entered.is_set()  # queued behind the waiting writer
        t.join()
        t2.join()
        assert wrote.is_set() and entered.is_set()


# -- satellite: N readers + 1 writer never observe torn rows ------------------


class TestNoTornReads:
    ROWS = 20
    READERS = 4
    WRITES = 60

    def _db(self):
        db = Database(telemetry=True)
        db.execute("CREATE TABLE t (id INTEGER, v INTEGER)")
        values = ", ".join(f"({i}, 0)" for i in range(self.ROWS))
        db.execute(f"INSERT INTO t VALUES {values}")
        return db

    def test_reader_sessions_see_whole_statements(self):
        """A writer session rewrites every row to one value per statement;
        reader sessions must always see 20 rows that all share a value."""
        db = self._db()
        manager = SessionManager(db)
        torn = []
        stop = threading.Event()

        def writer():
            session = manager.open_session(label="writer")
            for k in range(1, self.WRITES + 1):
                session.execute(f"UPDATE t SET v = {k}")
            stop.set()
            session.close()

        def reader(i):
            session = manager.open_session(label=f"reader{i}")
            while not stop.is_set():
                result = session.execute("SELECT v FROM t ORDER BY id")
                values = {row[0] for row in result.rows}
                if len(result.rows) != self.ROWS or len(values) != 1:
                    torn.append(result.rows)
            session.close()

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader, args=(i,))
            for i in range(self.READERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert torn == []

    def test_self_join_sees_one_snapshot_per_statement(self):
        """Within one statement, two scans of the same table agree even
        while a writer churns it (snapshot-at-first-scan)."""
        db = self._db()
        manager = SessionManager(db)
        mismatches = []
        stop = threading.Event()

        def writer():
            session = manager.open_session()
            for k in range(1, 40):
                session.execute(f"UPDATE t SET v = {k}")
            stop.set()
            session.close()

        def reader():
            session = manager.open_session()
            while not stop.is_set():
                result = session.execute(
                    "SELECT COUNT(*) FROM t AS a JOIN t AS b "
                    "ON a.id = b.id AND a.v = b.v"
                )
                if result.scalar() != self.ROWS:
                    mismatches.append(result.scalar())
            session.close()

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert mismatches == []
