"""Window function execution: ranking, navigation, frames, aggregates."""

from __future__ import annotations

import pytest

from repro import BindError, Database


@pytest.fixture
def w(db: Database) -> Database:
    db.execute("CREATE TABLE w (grp VARCHAR, seq INTEGER, val INTEGER)")
    db.execute(
        """INSERT INTO w VALUES
           ('a', 1, 10), ('a', 2, 20), ('a', 3, 30),
           ('b', 1, 5), ('b', 2, 5), ('b', 3, 1)"""
    )
    return db


def test_row_number(w):
    rows = w.execute(
        """SELECT grp, seq, ROW_NUMBER() OVER (PARTITION BY grp ORDER BY seq DESC)
           FROM w ORDER BY grp, seq"""
    ).rows
    assert rows == [
        ("a", 1, 3), ("a", 2, 2), ("a", 3, 1),
        ("b", 1, 3), ("b", 2, 2), ("b", 3, 1),
    ]


def test_rank_and_dense_rank_with_ties(w):
    rows = w.execute(
        """SELECT seq, RANK() OVER (PARTITION BY grp ORDER BY val),
                  DENSE_RANK() OVER (PARTITION BY grp ORDER BY val)
           FROM w WHERE grp = 'b' ORDER BY seq"""
    ).rows
    assert rows == [(1, 2, 2), (2, 2, 2), (3, 1, 1)]


def test_percent_rank(w):
    rows = w.execute(
        """SELECT seq, PERCENT_RANK() OVER (ORDER BY val)
           FROM w WHERE grp = 'a' ORDER BY seq"""
    ).rows
    assert rows == [(1, 0.0), (2, 0.5), (3, 1.0)]


def test_cume_dist(w):
    values = w.execute(
        """SELECT CUME_DIST() OVER (ORDER BY val)
           FROM w WHERE grp = 'b'"""
    ).rows
    assert sorted(v[0] for v in values) == [pytest.approx(1 / 3), 1.0, 1.0]


def test_ntile(w):
    rows = w.execute(
        "SELECT seq, NTILE(2) OVER (ORDER BY seq) FROM w WHERE grp = 'a' ORDER BY seq"
    ).rows
    assert rows == [(1, 1), (2, 1), (3, 2)]


def test_lag_lead_defaults(w):
    rows = w.execute(
        """SELECT seq, LAG(val) OVER (PARTITION BY grp ORDER BY seq),
                  LEAD(val) OVER (PARTITION BY grp ORDER BY seq)
           FROM w WHERE grp = 'a' ORDER BY seq"""
    ).rows
    assert rows == [(1, None, 20), (2, 10, 30), (3, 20, None)]


def test_lag_with_offset_and_default(w):
    rows = w.execute(
        """SELECT seq, LAG(val, 2, -1) OVER (ORDER BY seq)
           FROM w WHERE grp = 'a' ORDER BY seq"""
    ).rows
    assert rows == [(1, -1), (2, -1), (3, 10)]


def test_first_and_last_value(w):
    rows = w.execute(
        """SELECT seq,
                  FIRST_VALUE(val) OVER (PARTITION BY grp ORDER BY seq),
                  LAST_VALUE(val) OVER (PARTITION BY grp ORDER BY seq
                    ROWS BETWEEN UNBOUNDED PRECEDING AND UNBOUNDED FOLLOWING)
           FROM w WHERE grp = 'a' ORDER BY seq"""
    ).rows
    assert rows == [(1, 10, 30), (2, 10, 30), (3, 10, 30)]


def test_default_frame_running_sum(w):
    rows = w.execute(
        """SELECT seq, SUM(val) OVER (PARTITION BY grp ORDER BY seq)
           FROM w WHERE grp = 'a' ORDER BY seq"""
    ).rows
    assert rows == [(1, 10), (2, 30), (3, 60)]


def test_default_frame_includes_peers(w):
    # grp b has a tie on val=5: peers share the running total (RANGE frame).
    rows = w.execute(
        """SELECT seq, SUM(val) OVER (ORDER BY val)
           FROM w WHERE grp = 'b' ORDER BY seq"""
    ).rows
    assert rows == [(1, 11), (2, 11), (3, 1)]


def test_whole_partition_without_order(w):
    rows = w.execute(
        """SELECT grp, AVG(val) OVER (PARTITION BY grp) FROM w
           ORDER BY grp, seq"""
    ).rows
    assert rows[0] == ("a", 20.0)
    assert rows[3] == ("b", pytest.approx(11 / 3))


def test_rows_frame_moving_window(w):
    rows = w.execute(
        """SELECT seq, SUM(val) OVER (PARTITION BY grp ORDER BY seq
             ROWS BETWEEN 1 PRECEDING AND 1 FOLLOWING)
           FROM w WHERE grp = 'a' ORDER BY seq"""
    ).rows
    assert rows == [(1, 30), (2, 60), (3, 50)]


def test_rows_frame_preceding_only(w):
    rows = w.execute(
        """SELECT seq, COUNT(*) OVER (PARTITION BY grp ORDER BY seq
             ROWS 2 PRECEDING)
           FROM w WHERE grp = 'a' ORDER BY seq"""
    ).rows
    assert rows == [(1, 1), (2, 2), (3, 3)]


def test_count_star_window(w):
    rows = w.execute(
        "SELECT grp, COUNT(*) OVER (PARTITION BY grp) FROM w ORDER BY grp, seq"
    ).rows
    assert all(r[1] == 3 for r in rows)


def test_min_max_window(w):
    row = w.execute(
        """SELECT MIN(val) OVER (PARTITION BY grp),
                  MAX(val) OVER (PARTITION BY grp)
           FROM w WHERE grp = 'b' LIMIT 1"""
    ).rows[0]
    assert row == (1, 5)


def test_window_over_aggregate_output(w):
    rows = w.execute(
        """SELECT grp, SUM(val) AS total,
                  RANK() OVER (ORDER BY SUM(val) DESC) AS rnk
           FROM w GROUP BY grp ORDER BY grp"""
    ).rows
    assert rows == [("a", 60, 1), ("b", 11, 2)]


def test_window_in_where_rejected(w):
    with pytest.raises(BindError):
        w.execute("SELECT 1 FROM w WHERE ROW_NUMBER() OVER (ORDER BY seq) = 1")


def test_ranking_without_over_rejected(w):
    with pytest.raises(BindError):
        w.execute("SELECT ROW_NUMBER() FROM w")


def test_multiple_windows_in_one_query(w):
    rows = w.execute(
        """SELECT seq,
                  SUM(val) OVER (PARTITION BY grp),
                  ROW_NUMBER() OVER (ORDER BY val DESC, seq)
           FROM w WHERE grp = 'a' ORDER BY seq"""
    ).rows
    assert rows == [(1, 60, 3), (2, 60, 2), (3, 60, 1)]


def test_window_expression_arithmetic(w):
    rows = w.execute(
        """SELECT seq, val - AVG(val) OVER (PARTITION BY grp) AS delta
           FROM w WHERE grp = 'a' ORDER BY seq"""
    ).rows
    assert [r[1] for r in rows] == [-10.0, 0.0, 10.0]
